//! Algorithm 4.2: deriving all frequent patterns from the max-subpattern
//! tree.
//!
//! Candidates are generated level-wise exactly as in Apriori (Property 3.1
//! holds regardless of how counting is done), but counting never touches
//! the series again: the frequency of a candidate is the sum of the counts
//! of its superpattern hits in the tree — the node's own count plus those
//! of its *reachable ancestors* in the paper's formulation.
//!
//! Three counting strategies are exposed for the ablation study (DESIGN.md
//! experiment E7):
//!
//! * [`CountStrategy::TreeWalk`] — the paper's pruned trie traversal;
//! * [`CountStrategy::LinearScan`] — a flat pass over the distinct hits
//!   with one bitset subset test each;
//! * [`CountStrategy::Vertical`] — a columnar transpose of the distinct
//!   hits (one weighted segment bitmap per letter, see
//!   [`crate::vertical`]) counted by word-wide AND + popcount.

use crate::apriori::join_candidates;
use crate::hitset::tree::MaxSubpatternTree;
use crate::letters::LetterSet;
use crate::result::FrequentPattern;
use crate::scan::Scan1;
use crate::stats::MiningStats;
use crate::vertical::VerticalIndex;

/// How candidate counts are extracted from the tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CountStrategy {
    /// Pruned traversal of the trie (paper §4). Skips whole subtrees that
    /// drop a letter of the candidate.
    #[default]
    TreeWalk,
    /// Flat scan over the nodes with count > 0.
    LinearScan,
    /// Columnar counting over a weighted transpose of the distinct hits.
    Vertical,
}

impl CountStrategy {
    /// Counts the superpattern hits of `p` under this strategy.
    ///
    /// The `Vertical` arm rebuilds the transpose on every call, so it costs
    /// O(tree) — fine for spot checks, but derivation builds the index once
    /// and amortizes it over every candidate (see [`derive_frequent`]).
    pub fn count(self, tree: &MaxSubpatternTree, p: &LetterSet) -> u64 {
        match self {
            CountStrategy::TreeWalk => tree.count_superpatterns_walk(p),
            CountStrategy::LinearScan => tree.count_superpatterns_linear(p),
            CountStrategy::Vertical => VerticalIndex::from_tree(tree).count(p),
        }
    }
}

/// Derives every frequent pattern with ≥ 2 letters from the tree,
/// level-wise from the frequent 1-patterns of `scan1`. Appends to
/// `frequent` and updates `stats`; returns nothing else — 1-letter patterns
/// are the caller's responsibility (their exact counts come from scan 1).
pub fn derive_frequent(
    tree: &MaxSubpatternTree,
    scan1: &Scan1,
    strategy: CountStrategy,
    frequent: &mut Vec<FrequentPattern>,
    stats: &mut MiningStats,
) {
    match strategy {
        CountStrategy::Vertical => {
            // Transpose once, then every candidate is AND + popcount.
            let index = VerticalIndex::from_tree(tree);
            let mut and_ops = 0u64;
            derive_frequent_with(
                |p| index.count_with(p, &mut and_ops),
                scan1,
                frequent,
                stats,
            );
            ppm_observe::gauge("vertical.bitmap_bytes", index.bitmap_bytes() as u64);
            ppm_observe::gauge("vertical.and_ops", and_ops);
        }
        _ => derive_frequent_with(|p| strategy.count(tree, p), scan1, frequent, stats),
    }
}

/// The level-wise Apriori derivation loop over an arbitrary counting
/// oracle — the tree strategies and the vertical segment index plug in the
/// same way (Property 3.1 is independent of how counting is done).
pub(crate) fn derive_frequent_with(
    mut count: impl FnMut(&LetterSet) -> u64,
    scan1: &Scan1,
    frequent: &mut Vec<FrequentPattern>,
    stats: &mut MiningStats,
) {
    let n_letters = scan1.alphabet.len();
    let mut level: Vec<Vec<u32>> = (0..n_letters as u32).map(|i| vec![i]).collect();
    let mut k = 1;
    stats.max_level = stats.max_level.max(1);
    while !level.is_empty() {
        let candidates = join_candidates(&level);
        stats.candidates_generated += candidates.len() as u64;
        if candidates.is_empty() {
            break;
        }
        k += 1;
        stats.max_level = stats.max_level.max(k);
        let mut next_level = Vec::new();
        for cand in candidates {
            let set = LetterSet::from_indices(n_letters, cand.iter().map(|&l| l as usize));
            stats.subset_tests += 1;
            let count = count(&set);
            if count >= scan1.min_count {
                frequent.push(FrequentPattern {
                    letters: set,
                    count,
                });
                next_level.push(cand);
            }
        }
        level = next_level;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::letters::Alphabet;
    use crate::scan::MineConfig;
    use ppm_timeseries::FeatureId;

    fn fid(i: u32) -> FeatureId {
        FeatureId::from_raw(i)
    }

    fn scan1_with(n: usize, m: usize, min_conf: f64) -> Scan1 {
        let alphabet = Alphabet::new(n, (0..n).map(|i| (i, fid(i as u32))));
        let config = MineConfig::new(min_conf).unwrap();
        Scan1 {
            min_count: config.min_count(m),
            letter_counts: vec![m as u64; n],
            segment_count: m,
            alphabet,
        }
    }

    fn set(n: usize, idx: &[usize]) -> LetterSet {
        LetterSet::from_indices(n, idx.iter().copied())
    }

    #[test]
    fn derives_from_single_dominant_hit() {
        // 10 segments all hitting {0,1,2}: every subset of {0,1,2} with
        // >= 2 letters is frequent with count 10.
        let scan1 = scan1_with(4, 10, 0.5);
        let mut tree = MaxSubpatternTree::new(scan1.alphabet.full_set());
        for _ in 0..10 {
            tree.insert(&set(4, &[0, 1, 2]));
        }
        for strategy in [
            CountStrategy::TreeWalk,
            CountStrategy::LinearScan,
            CountStrategy::Vertical,
        ] {
            let mut frequent = Vec::new();
            let mut stats = MiningStats::default();
            derive_frequent(&tree, &scan1, strategy, &mut frequent, &mut stats);
            // {0,1} {0,2} {1,2} {0,1,2}: 4 multi-letter patterns.
            assert_eq!(frequent.len(), 4, "{strategy:?}");
            assert!(frequent.iter().all(|f| f.count == 10));
            assert_eq!(stats.max_level, 3);
        }
    }

    #[test]
    fn threshold_prunes_levels() {
        let scan1 = scan1_with(3, 10, 0.75); // min_count = 8
        let mut tree = MaxSubpatternTree::new(scan1.alphabet.full_set());
        for _ in 0..5 {
            tree.insert(&set(3, &[0, 1]));
        }
        for _ in 0..4 {
            tree.insert(&set(3, &[0, 1, 2]));
        }
        let mut frequent = Vec::new();
        let mut stats = MiningStats::default();
        derive_frequent(
            &tree,
            &scan1,
            CountStrategy::TreeWalk,
            &mut frequent,
            &mut stats,
        );
        // {0,1}: 5 + 4 = 9 >= 8 frequent; {0,2}, {1,2}: 4 < 8; {0,1,2}: 4.
        assert_eq!(frequent.len(), 1);
        assert_eq!(frequent[0].letters, set(3, &[0, 1]));
        assert_eq!(frequent[0].count, 9);
    }

    #[test]
    fn strategies_agree_on_scattered_hits() {
        let scan1 = scan1_with(6, 40, 0.1); // min_count = 4
        let mut tree = MaxSubpatternTree::new(scan1.alphabet.full_set());
        let hits: &[&[usize]] = &[
            &[0, 1],
            &[0, 1, 2],
            &[3, 4, 5],
            &[0, 3],
            &[1, 2, 4],
            &[0, 1, 2, 3, 4, 5],
            &[2, 5],
        ];
        for (i, h) in hits.iter().enumerate() {
            for _ in 0..=i {
                tree.insert(&set(6, h));
            }
        }
        let run = |strategy| {
            let mut frequent = Vec::new();
            let mut stats = MiningStats::default();
            derive_frequent(&tree, &scan1, strategy, &mut frequent, &mut stats);
            frequent.sort_by_key(|f| f.letters.iter().collect::<Vec<_>>());
            frequent
        };
        let a = run(CountStrategy::TreeWalk);
        let b = run(CountStrategy::LinearScan);
        let c = run(CountStrategy::Vertical);
        assert_eq!(a, b);
        assert_eq!(a, c);
        assert!(!a.is_empty());
    }

    #[test]
    fn empty_tree_yields_nothing() {
        let scan1 = scan1_with(3, 10, 0.5);
        let tree = MaxSubpatternTree::new(scan1.alphabet.full_set());
        let mut frequent = Vec::new();
        let mut stats = MiningStats::default();
        derive_frequent(
            &tree,
            &scan1,
            CountStrategy::TreeWalk,
            &mut frequent,
            &mut stats,
        );
        assert!(frequent.is_empty());
        // Candidates were still generated at level 2 (and rejected).
        assert_eq!(stats.candidates_generated, 3);
    }
}
