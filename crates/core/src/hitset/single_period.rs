//! Algorithm 3.2: single-period mining via the max-subpattern hit set.

use ppm_timeseries::{EncodedSeriesView, FeatureSeries};

use crate::error::Result;
use crate::guard::{ResourceGuard, DEADLINE_CHECK_INTERVAL};
use crate::hitset::derive::{derive_frequent, CountStrategy};
use crate::hitset::tree::MaxSubpatternTree;
use crate::letters::LetterSet;
use crate::result::{FrequentPattern, MiningResult};
use crate::rows::Rows;
use crate::scan::{scan_frequent_letters_rows, MineConfig, Scan1};
use crate::stats::MiningStats;

/// Mines all frequent partial periodic patterns of `period` in `series`
/// with the max-subpattern hit-set method (paper Algorithm 3.2), using the
/// default tree-walk counting strategy.
///
/// Exactly **two** scans of the series are performed, independent of the
/// period and of the length of the longest frequent pattern.
pub fn mine(series: &FeatureSeries, period: usize, config: &MineConfig) -> Result<MiningResult> {
    mine_with_strategy(series, period, config, CountStrategy::default())
}

/// [`mine`] over a borrowed bitmap view (an
/// [`EncodedSeries`](ppm_timeseries::EncodedSeries) cache or a columnar
/// file load): both scans probe the packed rows, so no
/// [`FeatureSeries`] needs to exist.
pub fn mine_view(
    view: EncodedSeriesView<'_>,
    period: usize,
    config: &MineConfig,
) -> Result<MiningResult> {
    mine_rows(Rows::View(view), period, config, CountStrategy::default())
}

/// [`mine`] with an explicit counting strategy (used by the ablation
/// benches to compare the paper's tree traversal with a flat scan).
pub fn mine_with_strategy(
    series: &FeatureSeries,
    period: usize,
    config: &MineConfig,
    strategy: CountStrategy,
) -> Result<MiningResult> {
    mine_rows(Rows::Series(series), period, config, strategy)
}

/// Algorithm 3.2 over either row substrate.
fn mine_rows(
    rows: Rows<'_>,
    period: usize,
    config: &MineConfig,
    strategy: CountStrategy,
) -> Result<MiningResult> {
    let _mine_span = ppm_observe::span("hitset.mine");
    let guard = ResourceGuard::new(config);

    // Scan 1: frequent 1-patterns and C_max.
    let scan1 = {
        let _span = ppm_observe::span("hitset.scan1");
        scan_frequent_letters_rows(rows, period, config)?
    };
    ppm_observe::gauge("hitset.segments_total", scan1.segment_count as u64);
    ppm_observe::gauge("hitset.f1_letters", scan1.alphabet.len() as u64);
    let mut stats = MiningStats {
        series_scans: 1,
        max_level: 1,
        ..Default::default()
    };
    guard.check_deadline(&stats)?;

    // Scan 2: register each segment's maximal hit subpattern.
    let tree = {
        let _span = ppm_observe::span("hitset.scan2");
        build_tree_guarded_rows(rows, &scan1, &mut stats, &guard)?
    };
    stats.series_scans += 1;
    stats.tree_nodes = tree.node_count();
    stats.distinct_hits = tree.distinct_hits();
    stats.hit_insertions = tree.total_hits();
    ppm_observe::gauge("tree.nodes", stats.tree_nodes as u64);
    ppm_observe::gauge("tree.distinct_hits", stats.distinct_hits as u64);

    // Derivation: 1-letter counts from scan 1, the rest from the tree.
    let _derive_span = ppm_observe::span("hitset.derive");
    let n_letters = scan1.alphabet.len();
    let mut frequent: Vec<FrequentPattern> = scan1
        .letter_counts
        .iter()
        .enumerate()
        .map(|(idx, &count)| FrequentPattern {
            letters: LetterSet::from_indices(n_letters, [idx]),
            count,
        })
        .collect();
    derive_frequent(&tree, &scan1, strategy, &mut frequent, &mut stats);
    drop(_derive_span);

    let mut result = MiningResult {
        period,
        segment_count: scan1.segment_count,
        min_confidence: config.min_confidence(),
        min_count: scan1.min_count,
        alphabet: scan1.alphabet,
        frequent,
        stats,
    };
    result.sort();
    Ok(result)
}

/// The second scan: projects every whole segment onto the frequent-letter
/// alphabet and inserts hits with at least two letters into the tree
/// (1-letter hits carry no information beyond scan 1; empty hits none).
pub(crate) fn build_tree(
    series: &FeatureSeries,
    scan1: &Scan1,
    stats: &mut MiningStats,
) -> MaxSubpatternTree {
    build_tree_guarded_rows(
        Rows::Series(series),
        scan1,
        stats,
        &ResourceGuard::unlimited(),
    )
    .expect("an unlimited guard cannot abort the build")
}

/// [`build_tree`] with resource guards, over either row substrate: the
/// tree budget is checked after every insert, the deadline once per
/// [`DEADLINE_CHECK_INTERVAL`] segments. On a violation the partial tree's
/// statistics are folded into `stats` and the typed guard error is
/// returned.
pub(crate) fn build_tree_guarded_rows(
    rows: Rows<'_>,
    scan1: &Scan1,
    stats: &mut MiningStats,
    guard: &ResourceGuard,
) -> Result<MaxSubpatternTree> {
    let period = scan1.alphabet.period();
    let m = scan1.segment_count;
    let mut tree = MaxSubpatternTree::new(scan1.alphabet.full_set());
    let mut hit = scan1.alphabet.empty_set();
    // Counter increments batch at the deadline-check cadence so the
    // observability cost stays off the per-segment fast path.
    let mut pending_segments: u64 = 0;
    for j in 0..m {
        hit.clear();
        for offset in 0..period {
            rows.project(&scan1.alphabet, offset, j * period + offset, &mut hit);
        }
        if hit.len() >= 2 {
            tree.insert(&hit);
            if guard.tree_over_budget(tree.node_count()) {
                absorb_tree_stats(stats, &tree);
                ppm_observe::counter("hitset.segments", pending_segments + 1);
                return Err(guard.tree_error(tree.node_count(), stats));
            }
        }
        pending_segments += 1;
        if j % DEADLINE_CHECK_INTERVAL == 0 {
            ppm_observe::counter("hitset.segments", pending_segments);
            pending_segments = 0;
            if guard.deadline_exceeded() {
                absorb_tree_stats(stats, &tree);
                return Err(guard.deadline_error(stats));
            }
        }
    }
    ppm_observe::counter("hitset.segments", pending_segments);
    Ok(tree)
}

/// Records a (possibly partial) tree's size statistics into `stats`.
fn absorb_tree_stats(stats: &mut MiningStats, tree: &MaxSubpatternTree) {
    stats.tree_nodes = tree.node_count();
    stats.distinct_hits = tree.distinct_hits();
    stats.hit_insertions = tree.total_hits();
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppm_timeseries::{FeatureCatalog, FeatureId, SeriesBuilder};

    use crate::pattern::Pattern;
    use crate::stats::hit_set_bound;

    fn fid(i: u32) -> FeatureId {
        FeatureId::from_raw(i)
    }

    /// The paper's §2 example series "a{b,c}b aeb ace d", period 3.
    fn example_series(cat: &mut FeatureCatalog) -> FeatureSeries {
        let a = cat.intern("a");
        let b = cat.intern("b");
        let c = cat.intern("c");
        let e = cat.intern("e");
        let d = cat.intern("d");
        let mut builder = SeriesBuilder::new();
        builder.push_instant([a]);
        builder.push_instant([b, c]);
        builder.push_instant([b]);
        builder.push_instant([a]);
        builder.push_instant([e]);
        builder.push_instant([b]);
        builder.push_instant([a]);
        builder.push_instant([c]);
        builder.push_instant([e]);
        builder.push_instant([d]);
        builder.finish()
    }

    #[test]
    fn mines_paper_example_identically_to_apriori() {
        let mut cat = FeatureCatalog::new();
        let series = example_series(&mut cat);
        let config = MineConfig::new(0.6).unwrap();
        let hitset = mine(&series, 3, &config).unwrap();
        let apriori = crate::apriori::mine(&series, 3, &config).unwrap();
        assert_eq!(hitset.frequent, apriori.frequent);
        // Spot-check: a*b frequent with count 2.
        let a_star_b = Pattern::parse("a * b", &mut cat).unwrap();
        assert_eq!(hitset.count_of(&a_star_b), Some(2));
    }

    #[test]
    fn always_two_scans() {
        let mut b = SeriesBuilder::new();
        for t in 0..300u32 {
            // A long embedded pattern so Apriori would need many levels.
            b.push_instant([fid(t % 10)]);
        }
        let s = b.finish();
        let result = mine(&s, 10, &MineConfig::new(0.9).unwrap()).unwrap();
        assert_eq!(result.stats.series_scans, 2);
        assert_eq!(result.max_letter_count(), 10);
        // Apriori needs 10 scans on the same input: one for F1 plus one per
        // level 2..=10 (the level-10 join yields no candidates, so no
        // further scan happens).
        let apriori = crate::apriori::mine(&s, 10, &MineConfig::new(0.9).unwrap()).unwrap();
        assert_eq!(apriori.stats.series_scans, 10);
        assert_eq!(apriori.frequent, result.frequent);
    }

    #[test]
    fn hit_set_respects_property_3_2_bound() {
        let mut b = SeriesBuilder::new();
        let mut x: u64 = 7;
        for _ in 0..400 {
            let mut inst = Vec::new();
            for f in 0..4u32 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                if (x >> 33).is_multiple_of(2) {
                    inst.push(fid(f));
                }
            }
            b.push_instant(inst);
        }
        let s = b.finish();
        let result = mine(&s, 8, &MineConfig::new(0.2).unwrap()).unwrap();
        let m = result.segment_count as u64;
        let f1 = result.alphabet.len() as u32;
        assert!(
            (result.stats.distinct_hits as u64) <= hit_set_bound(m, f1),
            "distinct hits {} exceed bound {}",
            result.stats.distinct_hits,
            hit_set_bound(m, f1)
        );
        assert!(result.stats.hit_insertions <= m);
    }

    #[test]
    fn one_letter_hits_are_not_inserted() {
        // Segments contain at most one frequent letter: tree stays trivial.
        let mut b = SeriesBuilder::new();
        for _ in 0..5 {
            b.push_instant([fid(0)]);
            b.push_instant([]);
        }
        let s = b.finish();
        let result = mine(&s, 2, &MineConfig::new(0.8).unwrap()).unwrap();
        assert_eq!(result.stats.hit_insertions, 0);
        assert_eq!(result.stats.tree_nodes, 1); // just the root
        assert_eq!(result.len(), 1); // the 1-pattern f0 at offset 0
    }

    /// A pseudo-random series with many distinct segment hits, to exercise
    /// tree growth.
    fn busy_series(n: usize) -> FeatureSeries {
        let mut b = SeriesBuilder::new();
        let mut x: u64 = 7;
        for _ in 0..n {
            let mut inst = Vec::new();
            for f in 0..4u32 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                if (x >> 33).is_multiple_of(2) {
                    inst.push(fid(f));
                }
            }
            b.push_instant(inst);
        }
        b.finish()
    }

    #[test]
    fn tree_budget_aborts_with_partial_stats() {
        use crate::error::Error;
        let s = busy_series(400);
        let config = MineConfig::new(0.2).unwrap().with_max_tree_nodes(2);
        let err = mine(&s, 8, &config).unwrap_err();
        match err {
            Error::TreeBudgetExceeded {
                nodes,
                budget,
                stats,
            } => {
                assert_eq!(budget, 2);
                assert!(nodes > 2);
                assert!(stats.hit_insertions >= 1, "partial progress recorded");
                assert_eq!(stats.series_scans, 1, "aborted during scan 2");
            }
            other => panic!("expected TreeBudgetExceeded, got {other:?}"),
        }
    }

    #[test]
    fn zero_deadline_aborts_with_typed_error() {
        use crate::error::Error;
        let s = busy_series(400);
        let config = MineConfig::new(0.2)
            .unwrap()
            .with_deadline(std::time::Duration::ZERO);
        let err = mine(&s, 8, &config).unwrap_err();
        assert!(matches!(err, Error::DeadlineExceeded { .. }), "got {err:?}");
        assert!(err.partial_stats().is_some());
    }

    #[test]
    fn generous_guards_leave_results_unchanged() {
        let s = busy_series(400);
        let plain = MineConfig::new(0.2).unwrap();
        let guarded = plain
            .with_deadline(std::time::Duration::from_secs(3600))
            .with_max_tree_nodes(1 << 30);
        let a = mine(&s, 8, &plain).unwrap();
        let b = mine(&s, 8, &guarded).unwrap();
        assert_eq!(a.frequent, b.frequent);
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn empty_alphabet_short_circuits() {
        let mut b = SeriesBuilder::new();
        for t in 0..10u32 {
            b.push_instant([fid(t)]);
        }
        let s = b.finish();
        let result = mine(&s, 2, &MineConfig::new(0.9).unwrap()).unwrap();
        assert!(result.is_empty());
        assert_eq!(result.stats.series_scans, 2);
    }

    #[test]
    fn view_mine_equals_series_mine() {
        use ppm_timeseries::EncodedSeries;
        let s = busy_series(400);
        let encoded = EncodedSeries::encode(&s);
        let config = MineConfig::new(0.2).unwrap();
        for p in [4, 8] {
            let plain = mine(&s, p, &config).unwrap();
            let viewed = mine_view(encoded.view(), p, &config).unwrap();
            assert_eq!(plain.frequent, viewed.frequent, "period {p}");
            assert_eq!(plain.stats, viewed.stats, "period {p}");
        }
    }
}
