//! The max-subpattern tree (paper §4, Algorithm 4.1).
//!
//! The tree stores the multiset of max-subpatterns hit during the second
//! scan. The root is the candidate max-pattern `C_max`; every other node is
//! a subpattern of its parent with exactly one more letter *missing*. Nodes
//! are addressed by their sorted missing-letter list: the canonical parent
//! of a node drops all but the largest missing letter, so the structure is
//! a set-trie and insertion of a hit pattern walks (and lazily creates) the
//! path of its missing letters in ascending order — exactly the ordered
//! traversal the paper describes, including interior nodes created with
//! count 0.
//!
//! Nodes live in an arena (`Vec`) and refer to each other by index: no
//! boxes, no reference counting, no unsafe.

use crate::letters::LetterSet;

/// Arena index of a tree node.
type NodeId = u32;

#[derive(Debug, Clone)]
struct Node {
    /// The pattern this node represents (a subpattern of `C_max`).
    pattern: LetterSet,
    /// Number of segments whose hit was exactly this pattern.
    count: u64,
    /// Canonical parent (None for the root).
    parent: Option<NodeId>,
    /// Child links `(dropped letter, node)`, sorted by letter. The child's
    /// missing list is the parent's plus that letter, and the letter is
    /// larger than every letter already missing on the path.
    children: Vec<(u32, NodeId)>,
}

/// The max-subpattern tree of Algorithm 4.1.
#[derive(Debug, Clone)]
pub struct MaxSubpatternTree {
    nodes: Vec<Node>,
    insertions: u64,
}

impl MaxSubpatternTree {
    /// Creates a tree rooted at the candidate max-pattern `c_max`.
    pub fn new(c_max: LetterSet) -> Self {
        MaxSubpatternTree {
            nodes: vec![Node {
                pattern: c_max,
                count: 0,
                parent: None,
                children: Vec::new(),
            }],
            insertions: 0,
        }
    }

    /// The root pattern `C_max`.
    pub fn c_max(&self) -> &LetterSet {
        &self.nodes[0].pattern
    }

    /// Registers one hit of `hit` (Algorithm 4.1): walks the missing-letter
    /// path from the root, creating absent nodes with count 0, then
    /// increments the final node's count.
    ///
    /// # Panics
    /// Panics (debug) if `hit` is not a subpattern of `C_max` or has fewer
    /// than 2 letters — the mining layer only stores multi-letter hits;
    /// 1-letter counts come from scan 1.
    pub fn insert(&mut self, hit: &LetterSet) {
        self.insert_with_count(hit, 1);
    }

    /// Registers `count` hits of `hit` at once. Used by shared mining and
    /// by tests that reconstruct published trees node by node (`count` may
    /// be 0 to force creation of an interior node).
    pub fn insert_with_count(&mut self, hit: &LetterSet, count: u64) {
        debug_assert!(
            hit.is_subset(self.c_max()),
            "hit must be a subpattern of C_max"
        );
        debug_assert!(
            hit.len() >= 2,
            "hits with < 2 letters are not stored in the tree"
        );
        let missing = self.c_max().difference(hit);
        let mut cur: NodeId = 0;
        for letter in missing.iter() {
            let letter = letter as u32;
            cur = match self.nodes[cur as usize]
                .children
                .binary_search_by_key(&letter, |&(l, _)| l)
            {
                Ok(pos) => self.nodes[cur as usize].children[pos].1,
                Err(pos) => {
                    let mut pattern = self.nodes[cur as usize].pattern.clone();
                    pattern.remove(letter as usize);
                    let id = self.nodes.len() as NodeId;
                    self.nodes.push(Node {
                        pattern,
                        count: 0,
                        parent: Some(cur),
                        children: Vec::new(),
                    });
                    self.nodes[cur as usize].children.insert(pos, (letter, id));
                    id
                }
            };
        }
        self.nodes[cur as usize].count += count;
        self.insertions += count;
    }

    /// Total nodes, including 0-count interior nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of distinct hit patterns (nodes with count > 0).
    pub fn distinct_hits(&self) -> usize {
        self.nodes.iter().filter(|n| n.count > 0).count()
    }

    /// Total hits registered (the number of contributing segments).
    pub fn total_hits(&self) -> u64 {
        self.insertions
    }

    /// The stored count of exactly the pattern `set`, if a node for it
    /// exists (0-count interior nodes report `Some(0)`).
    pub fn count_at(&self, set: &LetterSet) -> Option<u64> {
        let missing = self.c_max().difference(set);
        if !set.is_subset(self.c_max()) {
            return None;
        }
        let mut cur: NodeId = 0;
        for letter in missing.iter() {
            let letter = letter as u32;
            match self.nodes[cur as usize]
                .children
                .binary_search_by_key(&letter, |&(l, _)| l)
            {
                Ok(pos) => cur = self.nodes[cur as usize].children[pos].1,
                Err(_) => return None,
            }
        }
        Some(self.nodes[cur as usize].count)
    }

    /// Iterates `(pattern, count)` over nodes with count > 0 — the hit set.
    pub fn counted_nodes(&self) -> impl Iterator<Item = (&LetterSet, u64)> {
        self.nodes
            .iter()
            .filter(|n| n.count > 0)
            .map(|n| (&n.pattern, n.count))
    }

    /// The frequency count of a candidate pattern `p`: the sum of the
    /// counts of all stored hits that are superpatterns of `p`
    /// (linear-scan strategy — one bitset subset test per distinct hit).
    pub fn count_superpatterns_linear(&self, p: &LetterSet) -> u64 {
        self.nodes
            .iter()
            .filter(|n| n.count > 0 && p.is_subset(&n.pattern))
            .map(|n| n.count)
            .sum()
    }

    /// The frequency count of a candidate pattern `p`, computed by walking
    /// the trie (the paper's reachable-ancestor traversal, generalized to
    /// arbitrary candidates): a subtree reached by dropping a letter of `p`
    /// can contain no superpattern of `p` and is pruned wholesale.
    pub fn count_superpatterns_walk(&self, p: &LetterSet) -> u64 {
        let mut total = 0u64;
        let mut stack: Vec<NodeId> = vec![0];
        while let Some(id) = stack.pop() {
            let node = &self.nodes[id as usize];
            // Invariant: every node on the stack misses no letter of `p`,
            // i.e. its pattern is a superpattern of `p`.
            total += node.count;
            for &(letter, child) in &node.children {
                if !p.contains(letter as usize) {
                    stack.push(child);
                }
            }
        }
        total
    }

    /// The *reachable ancestors* of the node for `set` (paper §4, Example
    /// 4.2): every existing node whose pattern is a proper superpattern,
    /// i.e. whose missing list is a proper subset of `set`'s. Returns
    /// `(pattern, count)` pairs; the node itself is excluded.
    pub fn reachable_ancestors(&self, set: &LetterSet) -> Vec<(&LetterSet, u64)> {
        let mut out = Vec::new();
        let mut stack: Vec<NodeId> = vec![0];
        while let Some(id) = stack.pop() {
            let node = &self.nodes[id as usize];
            if node.pattern != *set {
                out.push((&node.pattern, node.count));
            }
            for &(letter, child) in &node.children {
                if !set.contains(letter as usize) {
                    stack.push(child);
                }
            }
        }
        out
    }

    /// The intersection of all counted hits that are superpatterns of `p`,
    /// or `None` when no stored hit contains `p`. This is the *closure* of
    /// `p` restricted to the multi-letter hits: the largest pattern matched
    /// by exactly the segments that match `p` (used by closed-pattern
    /// mining). Prunes like [`Self::count_superpatterns_walk`].
    pub fn intersect_superpatterns(&self, p: &LetterSet) -> Option<LetterSet> {
        let mut acc: Option<LetterSet> = None;
        let mut stack: Vec<NodeId> = vec![0];
        while let Some(id) = stack.pop() {
            let node = &self.nodes[id as usize];
            if node.count > 0 {
                match &mut acc {
                    None => acc = Some(node.pattern.clone()),
                    Some(acc) => acc.intersect_with(&node.pattern),
                }
            }
            for &(letter, child) in &node.children {
                if !p.contains(letter as usize) {
                    stack.push(child);
                }
            }
        }
        acc
    }

    /// Merges another tree's hit multiset into this one. Both trees must be
    /// rooted at the same `C_max`. Used by the parallel miner to combine
    /// per-thread trees after a partitioned second scan.
    ///
    /// # Panics
    /// Panics if the root patterns differ.
    pub fn merge_from(&mut self, other: &MaxSubpatternTree) {
        assert_eq!(
            self.c_max(),
            other.c_max(),
            "cannot merge trees with different C_max"
        );
        for (pattern, count) in other.counted_nodes() {
            self.insert_with_count(pattern, count);
        }
    }

    /// Renders the tree as an indented outline (one node per line, counts
    /// included), for diagnostics and the didactic examples. Patterns are
    /// shown as letter-index sets.
    pub fn dump(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        // Depth-first over canonical links, children in letter order.
        let mut stack: Vec<(NodeId, usize)> = vec![(0, 0)];
        while let Some((id, depth)) = stack.pop() {
            let node = &self.nodes[id as usize];
            let _ = writeln!(
                out,
                "{:indent$}{:?} count={}",
                "",
                node.pattern,
                node.count,
                indent = depth * 2
            );
            for &(_, child) in node.children.iter().rev() {
                stack.push((child, depth + 1));
            }
        }
        out
    }

    /// Maximum depth of the tree (root = 0); equals the largest number of
    /// letters missing from any stored hit.
    pub fn depth(&self) -> usize {
        let mut depth = vec![0usize; self.nodes.len()];
        let mut max = 0;
        // Parents always precede children in the arena, so one pass works.
        for i in 1..self.nodes.len() {
            let parent = self.nodes[i].parent.expect("non-root has parent") as usize;
            depth[i] = depth[parent] + 1;
            max = max.max(depth[i]);
        }
        max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(universe: usize, idx: &[usize]) -> LetterSet {
        LetterSet::from_indices(universe, idx.iter().copied())
    }

    #[test]
    fn insert_counts_repeats() {
        let mut t = MaxSubpatternTree::new(LetterSet::full(4));
        let h = set(4, &[0, 1]);
        t.insert(&h);
        t.insert(&h);
        assert_eq!(t.count_at(&h), Some(2));
        assert_eq!(t.total_hits(), 2);
        assert_eq!(t.distinct_hits(), 1);
    }

    #[test]
    fn insert_creates_zero_count_ancestors() {
        // C_max = {0,1,2,3}; inserting {1,3} (missing {0,2}) must create
        // the interior node for missing {0} with count 0.
        let mut t = MaxSubpatternTree::new(LetterSet::full(4));
        t.insert(&set(4, &[1, 3]));
        assert_eq!(t.node_count(), 3); // root + missing{0} + missing{0,2}
        assert_eq!(t.count_at(&set(4, &[1, 2, 3])), Some(0));
        assert_eq!(t.count_at(&set(4, &[1, 3])), Some(1));
        // The other one-missing node was never needed.
        assert_eq!(t.count_at(&set(4, &[0, 1, 3])), None);
    }

    #[test]
    fn insert_root_hit() {
        let mut t = MaxSubpatternTree::new(LetterSet::full(3));
        t.insert(&LetterSet::full(3));
        assert_eq!(t.count_at(&LetterSet::full(3)), Some(1));
        assert_eq!(t.node_count(), 1);
    }

    #[test]
    fn paths_are_shared() {
        let mut t = MaxSubpatternTree::new(LetterSet::full(4));
        t.insert(&set(4, &[2, 3])); // missing {0,1}
        t.insert(&set(4, &[1, 2, 3])); // missing {0} — already exists
        assert_eq!(t.node_count(), 3);
        assert_eq!(t.count_at(&set(4, &[1, 2, 3])), Some(1));
        assert_eq!(t.count_at(&set(4, &[2, 3])), Some(1));
    }

    #[test]
    fn superpattern_counting_linear_equals_walk() {
        let mut t = MaxSubpatternTree::new(LetterSet::full(5));
        let hits = [
            vec![0, 1, 2, 3, 4],
            vec![0, 1, 2],
            vec![1, 2],
            vec![0, 4],
            vec![2, 3, 4],
            vec![1, 2],
        ];
        for h in &hits {
            t.insert(&set(5, h));
        }
        for candidate in [
            vec![1, 2],
            vec![0],
            vec![4],
            vec![2, 3],
            vec![0, 1, 2, 3, 4],
            vec![],
        ] {
            let c = set(5, &candidate);
            assert_eq!(
                t.count_superpatterns_linear(&c),
                t.count_superpatterns_walk(&c),
                "candidate {candidate:?}"
            );
        }
        // Spot-check an exact value: {1,2} ⊆ hits 0,1,2,5 -> count 4.
        assert_eq!(t.count_superpatterns_linear(&set(5, &[1, 2])), 4);
        // The empty pattern is a subpattern of everything.
        assert_eq!(t.count_superpatterns_walk(&set(5, &[])), hits.len() as u64);
    }

    #[test]
    fn reachable_ancestors_match_figure_1_example_4_2() {
        // C_max = a{b1,b2}*d* -> letters a=0, b1=1, b2=2, d=3.
        // Reconstruct Figure 1's tree shape, then ask for the reachable
        // ancestors of ***d* (missing {a, b1, b2}) as in Example 4.2:
        // linked: root, ~a, ~a~b1; not linked: ~a~b2, ~b1~b2?… the paper
        // names the 3 linked ones and 4 not-linked; all 7 existing proper
        // superpatterns must be returned if present in the tree.
        let mut t = MaxSubpatternTree::new(LetterSet::full(4));
        // Create every node of Figure 1 (counts irrelevant here).
        for missing in [
            vec![0],
            vec![1],
            vec![2],
            vec![3],
            vec![0, 1],
            vec![0, 2],
            vec![0, 3],
            vec![1, 2],
            vec![1, 3],
            vec![2, 3],
        ] {
            let mut hit = LetterSet::full(4);
            for &l in &missing {
                hit.remove(l);
            }
            t.insert(&hit);
        }
        let target = set(4, &[3]); // ***d*, missing {0,1,2}
        let ancestors = t.reachable_ancestors(&target);
        // Proper superpatterns of {3} present in the tree: root {0,1,2,3},
        // {1,2,3}, {0,2,3}, {0,1,3}, {2,3}, {1,3}, {0,3} — 7 nodes.
        assert_eq!(ancestors.len(), 7);
        for (pat, _) in &ancestors {
            assert!(target.is_subset(pat));
            assert_ne!(**pat, target);
        }
    }

    #[test]
    fn figure_1_counts_reproduce_example_4_3_frequencies() {
        // Letters: a=0, b1=1, b2=2, d=3. Figure 1 node counts:
        //   root a{b1,b2}*d*            : 10
        //   *{b1,b2}*d*  (~a)           : 50
        //   a{b1,b2}***  (~d)           : 40
        //   ab2*d*       (~b1)          : 32
        //   ab1*d*       (~b2)          : 0
        //   *b1*d*                      : 8
        //   *b2*d*                      : 0
        //   *{b1,b2}***                 : 19
        //   a**d*                       : 5
        //   ab2***                      : 2
        //   ab1***                      : 18
        let mut t = MaxSubpatternTree::new(LetterSet::full(4));
        let mut put = |letters: &[usize], count: u64| {
            t.insert_with_count(&set(4, letters), count);
        };
        put(&[0, 1, 2, 3], 10);
        put(&[1, 2, 3], 50);
        put(&[0, 1, 2], 40);
        put(&[0, 2, 3], 32);
        put(&[0, 1, 3], 0);
        put(&[1, 3], 8);
        put(&[2, 3], 0);
        put(&[1, 2], 19);
        put(&[0, 3], 5);
        put(&[0, 2], 2);
        put(&[0, 1], 18);

        // Example 4.3's level-2 frequencies.
        let expect = [
            (vec![1usize, 3], 68u64), // *b1*d* = 8 + 0 + 50 + 10
            (vec![2, 3], 92),         // *b2*d* = 0 + 32 + 50 + 10
            (vec![1, 2], 119),        // *{b1,b2}*** = 19 + 40 + 50 + 10
            (vec![0, 3], 47),         // a**d* = 5 + 0 + 32 + 10
            (vec![0, 2], 84),         // ab2*** = 2 + 32 + 40 + 10
            (vec![0, 1], 68),         // ab1*** = 18 + 0 + 40 + 10
        ];
        for (letters, freq) in expect {
            let p = set(4, &letters);
            assert_eq!(t.count_superpatterns_walk(&p), freq, "pattern {letters:?}");
            assert_eq!(
                t.count_superpatterns_linear(&p),
                freq,
                "pattern {letters:?}"
            );
        }
        // Level-1 (one letter missing) frequencies from the example:
        // *{b1,b2}*d* = 50 + 10 = 60 and a{b1,b2}*** = 40 + 10 = 50.
        assert_eq!(t.count_superpatterns_walk(&set(4, &[1, 2, 3])), 60);
        assert_eq!(t.count_superpatterns_walk(&set(4, &[0, 1, 2])), 50);
        // ab2*d* = 32 + 10 = 42 and ab1*d* = 0 + 10 = 10: below the
        // example's threshold of 45, hence infrequent there.
        assert_eq!(t.count_superpatterns_walk(&set(4, &[0, 2, 3])), 42);
        assert_eq!(t.count_superpatterns_walk(&set(4, &[0, 1, 3])), 10);
        // The root itself: only its own 10 hits.
        assert_eq!(t.count_superpatterns_walk(&LetterSet::full(4)), 10);
    }

    #[test]
    fn depth_tracks_missing_letters() {
        let mut t = MaxSubpatternTree::new(LetterSet::full(5));
        assert_eq!(t.depth(), 0);
        t.insert(&set(5, &[0, 1, 2, 3])); // 1 missing
        assert_eq!(t.depth(), 1);
        t.insert(&set(5, &[3, 4])); // 3 missing
        assert_eq!(t.depth(), 3);
    }

    #[test]
    fn merge_combines_multisets() {
        let mut a = MaxSubpatternTree::new(LetterSet::full(4));
        let mut b = MaxSubpatternTree::new(LetterSet::full(4));
        a.insert(&set(4, &[0, 1]));
        a.insert(&set(4, &[0, 1, 2]));
        b.insert(&set(4, &[0, 1]));
        b.insert(&set(4, &[2, 3]));
        a.merge_from(&b);
        assert_eq!(a.count_at(&set(4, &[0, 1])), Some(2));
        assert_eq!(a.count_at(&set(4, &[0, 1, 2])), Some(1));
        assert_eq!(a.count_at(&set(4, &[2, 3])), Some(1));
        assert_eq!(a.total_hits(), 4);
        // Counting sees the union.
        assert_eq!(a.count_superpatterns_walk(&set(4, &[0, 1])), 3);
    }

    #[test]
    #[should_panic(expected = "different C_max")]
    fn merge_rejects_mismatched_roots() {
        let mut a = MaxSubpatternTree::new(LetterSet::full(4));
        let b = MaxSubpatternTree::new(set(4, &[0, 1]));
        a.merge_from(&b);
    }

    #[test]
    fn dump_lists_every_node() {
        let mut t = MaxSubpatternTree::new(LetterSet::full(3));
        t.insert(&set(3, &[0, 1]));
        t.insert(&set(3, &[1, 2]));
        let text = t.dump();
        assert_eq!(text.lines().count(), t.node_count());
        assert!(text.contains("count=1"));
    }

    #[test]
    fn count_at_rejects_foreign_patterns() {
        let t = MaxSubpatternTree::new(set(4, &[0, 1, 2]));
        assert_eq!(t.count_at(&set(4, &[3])), None);
    }
}
