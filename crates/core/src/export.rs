//! Tabular export of mining results.
//!
//! Experiment pipelines want machine-readable output; this module renders
//! results as TSV (tab-separated, one row per pattern/rule, header first).
//! Feature names are sanitized — tabs and newlines become spaces — so rows
//! always parse back.

use ppm_timeseries::FeatureCatalog;

use crate::error::{Error, Result};
use crate::pattern::Pattern;
use crate::result::MiningResult;
use crate::rules::PeriodicRule;

/// The header line [`patterns_tsv`] writes and [`parse_patterns_tsv`]
/// requires.
pub const PATTERNS_TSV_HEADER: &str = "pattern\tletters\tl_length\tcount\tconfidence";

fn sanitize(s: &str) -> String {
    s.replace(['\t', '\n', '\r'], " ")
}

/// Renders all frequent patterns as TSV:
/// `pattern, letters, l_length, count, confidence`.
pub fn patterns_tsv(result: &MiningResult, catalog: &FeatureCatalog) -> String {
    let mut out = String::from(PATTERNS_TSV_HEADER);
    out.push('\n');
    for fp in &result.frequent {
        let pattern = Pattern::from_letter_set(&result.alphabet, &fp.letters);
        out.push_str(&format!(
            "{}\t{}\t{}\t{}\t{:.6}\n",
            sanitize(&pattern.display(catalog).to_string()),
            fp.letters.len(),
            result.alphabet.l_length_of(&fp.letters),
            fp.count,
            fp.confidence(result.segment_count),
        ));
    }
    out
}

/// One row of a patterns TSV parsed back into checkable form: the claim a
/// previous run exported, ready for [`crate::audit::verify_claims`].
#[derive(Debug, Clone, PartialEq)]
pub struct PatternClaim {
    /// The claimed pattern, parsed from the row's text form.
    pub pattern: Pattern,
    /// The row's letter-count field.
    pub letters: usize,
    /// The row's L-length field.
    pub l_length: usize,
    /// The claimed frequency count.
    pub count: u64,
    /// The claimed confidence.
    pub confidence: f64,
}

/// Parses a patterns TSV (as written by [`patterns_tsv`]) back into claims.
///
/// Strict by design: a wrong header, a row with the wrong field count, or
/// an unparsable number is a typed [`Error::PatternParse`] naming the line
/// — a damaged export must not silently verify.
pub fn parse_patterns_tsv(text: &str, catalog: &mut FeatureCatalog) -> Result<Vec<PatternClaim>> {
    let bad = |line: usize, detail: String| Error::PatternParse {
        detail: format!("patterns TSV line {line}: {detail}"),
    };
    let mut lines = text.lines().enumerate();
    match lines.next() {
        Some((_, header)) if header == PATTERNS_TSV_HEADER => {}
        Some((_, header)) => {
            return Err(bad(1, format!("expected header, got {header:?}")));
        }
        None => return Err(bad(1, "empty file".into())),
    }
    let mut claims = Vec::new();
    for (i, row) in lines {
        let line = i + 1;
        if row.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = row.split('\t').collect();
        let [pattern, letters, l_length, count, confidence] = fields[..] else {
            return Err(bad(
                line,
                format!("expected 5 tab-separated fields, got {}", fields.len()),
            ));
        };
        let parse_num = |name: &str, v: &str| -> Result<u64> {
            v.parse()
                .map_err(|_| bad(line, format!("unparsable {name} {v:?}")))
        };
        claims.push(PatternClaim {
            pattern: Pattern::parse(pattern, catalog)?,
            letters: parse_num("letters", letters)? as usize,
            l_length: parse_num("l_length", l_length)? as usize,
            count: parse_num("count", count)?,
            confidence: confidence
                .parse()
                .map_err(|_| bad(line, format!("unparsable confidence {confidence:?}")))?,
        });
    }
    Ok(claims)
}

/// Renders rules as TSV:
/// `antecedent, consequent, support_count, confidence`.
pub fn rules_tsv(
    rules: &[PeriodicRule],
    result: &MiningResult,
    catalog: &FeatureCatalog,
) -> String {
    let mut out = String::from("antecedent\tconsequent\tsupport_count\tconfidence\n");
    for rule in rules {
        let ante = Pattern::from_letter_set(&result.alphabet, &rule.antecedent);
        let (offset, feature) = result.alphabet.letter(rule.consequent);
        out.push_str(&format!(
            "{}\t{}@{}\t{}\t{:.6}\n",
            sanitize(&ante.display(catalog).to_string()),
            sanitize(&catalog.name_or_placeholder(feature)),
            offset,
            rule.support_count,
            rule.confidence,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppm_timeseries::SeriesBuilder;

    use crate::rules::generate_rules;
    use crate::scan::MineConfig;

    fn mined() -> (MiningResult, FeatureCatalog) {
        let mut catalog = FeatureCatalog::new();
        let a = catalog.intern("alpha");
        let b = catalog.intern("beta");
        let mut builder = SeriesBuilder::new();
        for j in 0..10 {
            builder.push_instant([a]);
            builder.push_instant(if j % 2 == 0 { vec![b] } else { vec![] });
        }
        let series = builder.finish();
        let result = crate::hitset::mine(&series, 2, &MineConfig::new(0.5).unwrap()).unwrap();
        (result, catalog)
    }

    #[test]
    fn patterns_tsv_has_one_row_per_pattern() {
        let (result, catalog) = mined();
        let tsv = patterns_tsv(&result, &catalog);
        let lines: Vec<&str> = tsv.lines().collect();
        assert_eq!(lines.len(), result.len() + 1);
        assert_eq!(lines[0], "pattern\tletters\tl_length\tcount\tconfidence");
        // Every data row has exactly 5 tab-separated fields.
        for row in &lines[1..] {
            assert_eq!(row.split('\t').count(), 5, "{row}");
        }
        assert!(tsv.contains("alpha"));
    }

    #[test]
    fn rules_tsv_round_trips_fields() {
        let (result, catalog) = mined();
        let rules = generate_rules(&result, 0.0);
        let tsv = rules_tsv(&rules, &result, &catalog);
        let lines: Vec<&str> = tsv.lines().collect();
        assert_eq!(lines.len(), rules.len() + 1);
        for (row, rule) in lines[1..].iter().zip(&rules) {
            let fields: Vec<&str> = row.split('\t').collect();
            assert_eq!(fields.len(), 4);
            assert_eq!(fields[2].parse::<u64>().unwrap(), rule.support_count);
            let conf: f64 = fields[3].parse().unwrap();
            assert!((conf - rule.confidence).abs() < 1e-6);
        }
    }

    #[test]
    fn names_are_sanitized() {
        let mut catalog = FeatureCatalog::new();
        let weird = catalog.intern("has\ttab");
        let mut builder = SeriesBuilder::new();
        for _ in 0..4 {
            builder.push_instant([weird]);
        }
        let series = builder.finish();
        let result = crate::hitset::mine(&series, 1, &MineConfig::new(0.9).unwrap()).unwrap();
        let tsv = patterns_tsv(&result, &catalog);
        for row in tsv.lines().skip(1) {
            assert_eq!(row.split('\t').count(), 5, "{row}");
        }
        assert!(tsv.contains("has tab"));
    }

    #[test]
    fn patterns_tsv_parses_back_losslessly() {
        let (result, catalog) = mined();
        let tsv = patterns_tsv(&result, &catalog);
        let mut catalog2 = catalog.clone();
        let claims = parse_patterns_tsv(&tsv, &mut catalog2).unwrap();
        assert_eq!(claims.len(), result.len());
        for (claim, fp) in claims.iter().zip(&result.frequent) {
            assert_eq!(claim.count, fp.count);
            assert_eq!(claim.letters, fp.letters.len());
            assert_eq!(
                claim.pattern.to_letter_set(&result.alphabet),
                Some(fp.letters.clone())
            );
            assert!((claim.confidence - fp.confidence(result.segment_count)).abs() < 1e-6);
        }
    }

    #[test]
    fn parse_rejects_damaged_tsv_with_typed_errors() {
        let (result, catalog) = mined();
        let tsv = patterns_tsv(&result, &catalog);
        let mut cat = catalog.clone();
        // Wrong header.
        assert!(parse_patterns_tsv("nonsense\n", &mut cat).is_err());
        // Empty file.
        assert!(parse_patterns_tsv("", &mut cat).is_err());
        // Truncated row (field chopped off).
        let mut rows: Vec<&str> = tsv.lines().collect();
        let short = rows[1].rsplit_once('\t').unwrap().0.to_owned();
        rows[1] = &short;
        assert!(parse_patterns_tsv(&rows.join("\n"), &mut cat).is_err());
        // Unparsable count.
        let broken = tsv.replacen(&format!("\t{}\t", result.frequent[0].count), "\tnope\t", 1);
        assert!(parse_patterns_tsv(&broken, &mut cat).is_err());
        // The error names the line.
        let err = parse_patterns_tsv(
            "pattern\tletters\tl_length\tcount\tconfidence\nx\t1\t1\tbad\t0.5\n",
            &mut cat,
        )
        .unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
    }

    #[test]
    #[allow(clippy::redundant_clone)]
    fn empty_result_is_header_only() {
        let (mut result, catalog) = mined();
        result.frequent.clear();
        assert_eq!(patterns_tsv(&result, &catalog).lines().count(), 1);
        assert_eq!(rules_tsv(&[], &result, &catalog).lines().count(), 1);
    }
}
