//! Tabular export of mining results.
//!
//! Experiment pipelines want machine-readable output; this module renders
//! results as TSV (tab-separated, one row per pattern/rule, header first).
//! Feature names are sanitized — tabs and newlines become spaces — so rows
//! always parse back.

use ppm_timeseries::FeatureCatalog;

use crate::pattern::Pattern;
use crate::result::MiningResult;
use crate::rules::PeriodicRule;

fn sanitize(s: &str) -> String {
    s.replace(['\t', '\n', '\r'], " ")
}

/// Renders all frequent patterns as TSV:
/// `pattern, letters, l_length, count, confidence`.
pub fn patterns_tsv(result: &MiningResult, catalog: &FeatureCatalog) -> String {
    let mut out = String::from("pattern\tletters\tl_length\tcount\tconfidence\n");
    for fp in &result.frequent {
        let pattern = Pattern::from_letter_set(&result.alphabet, &fp.letters);
        out.push_str(&format!(
            "{}\t{}\t{}\t{}\t{:.6}\n",
            sanitize(&pattern.display(catalog).to_string()),
            fp.letters.len(),
            result.alphabet.l_length_of(&fp.letters),
            fp.count,
            fp.confidence(result.segment_count),
        ));
    }
    out
}

/// Renders rules as TSV:
/// `antecedent, consequent, support_count, confidence`.
pub fn rules_tsv(
    rules: &[PeriodicRule],
    result: &MiningResult,
    catalog: &FeatureCatalog,
) -> String {
    let mut out = String::from("antecedent\tconsequent\tsupport_count\tconfidence\n");
    for rule in rules {
        let ante = Pattern::from_letter_set(&result.alphabet, &rule.antecedent);
        let (offset, feature) = result.alphabet.letter(rule.consequent);
        out.push_str(&format!(
            "{}\t{}@{}\t{}\t{:.6}\n",
            sanitize(&ante.display(catalog).to_string()),
            sanitize(&catalog.name_or_placeholder(feature)),
            offset,
            rule.support_count,
            rule.confidence,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppm_timeseries::SeriesBuilder;

    use crate::rules::generate_rules;
    use crate::scan::MineConfig;

    fn mined() -> (MiningResult, FeatureCatalog) {
        let mut catalog = FeatureCatalog::new();
        let a = catalog.intern("alpha");
        let b = catalog.intern("beta");
        let mut builder = SeriesBuilder::new();
        for j in 0..10 {
            builder.push_instant([a]);
            builder.push_instant(if j % 2 == 0 { vec![b] } else { vec![] });
        }
        let series = builder.finish();
        let result = crate::hitset::mine(&series, 2, &MineConfig::new(0.5).unwrap()).unwrap();
        (result, catalog)
    }

    #[test]
    fn patterns_tsv_has_one_row_per_pattern() {
        let (result, catalog) = mined();
        let tsv = patterns_tsv(&result, &catalog);
        let lines: Vec<&str> = tsv.lines().collect();
        assert_eq!(lines.len(), result.len() + 1);
        assert_eq!(lines[0], "pattern\tletters\tl_length\tcount\tconfidence");
        // Every data row has exactly 5 tab-separated fields.
        for row in &lines[1..] {
            assert_eq!(row.split('\t').count(), 5, "{row}");
        }
        assert!(tsv.contains("alpha"));
    }

    #[test]
    fn rules_tsv_round_trips_fields() {
        let (result, catalog) = mined();
        let rules = generate_rules(&result, 0.0);
        let tsv = rules_tsv(&rules, &result, &catalog);
        let lines: Vec<&str> = tsv.lines().collect();
        assert_eq!(lines.len(), rules.len() + 1);
        for (row, rule) in lines[1..].iter().zip(&rules) {
            let fields: Vec<&str> = row.split('\t').collect();
            assert_eq!(fields.len(), 4);
            assert_eq!(fields[2].parse::<u64>().unwrap(), rule.support_count);
            let conf: f64 = fields[3].parse().unwrap();
            assert!((conf - rule.confidence).abs() < 1e-6);
        }
    }

    #[test]
    fn names_are_sanitized() {
        let mut catalog = FeatureCatalog::new();
        let weird = catalog.intern("has\ttab");
        let mut builder = SeriesBuilder::new();
        for _ in 0..4 {
            builder.push_instant([weird]);
        }
        let series = builder.finish();
        let result = crate::hitset::mine(&series, 1, &MineConfig::new(0.9).unwrap()).unwrap();
        let tsv = patterns_tsv(&result, &catalog);
        for row in tsv.lines().skip(1) {
            assert_eq!(row.split('\t').count(), 5, "{row}");
        }
        assert!(tsv.contains("has tab"));
    }

    #[test]
    #[allow(clippy::redundant_clone)]
    fn empty_result_is_header_only() {
        let (mut result, catalog) = mined();
        result.frequent.clear();
        assert_eq!(patterns_tsv(&result, &catalog).lines().count(), 1);
        assert_eq!(rules_tsv(&[], &result, &catalog).lines().count(), 1);
    }
}
