//! Query- and constraint-based mining of partial periodicity.
//!
//! §6 of the paper lists "query- and constraint-based mining of partial
//! periodicity [NLHP98]" among the natural follow-ons: users rarely want
//! *all* frequent patterns — they want "patterns involving the newspaper",
//! "patterns in the morning slots", or "patterns of at most 4 letters".
//!
//! [`Constraints`] captures the standard constraint classes and
//! [`mine_constrained`] pushes each into the hit-set mining pipeline where
//! it is sound to do so:
//!
//! * **succinct** constraints (`offsets`, `features`) restrict the letter
//!   alphabet before the second scan — smaller `C_max`, smaller tree;
//! * **anti-monotone** constraints (`max_letters`) cap the level-wise
//!   derivation;
//! * **required letters** re-root the search: every answer must be a
//!   superset of `required`, so the lattice over the remaining letters is
//!   explored with the counting oracle `count(required ∪ S)` — still
//!   anti-monotone, so Apriori pruning stays valid.
//!
//! ```
//! use ppm_core::constraints::{mine_constrained, Constraints};
//! use ppm_core::MineConfig;
//! use ppm_timeseries::{FeatureCatalog, SeriesBuilder};
//!
//! let mut catalog = FeatureCatalog::new();
//! let coffee = catalog.intern("coffee");
//! let tv = catalog.intern("tv");
//! let mut builder = SeriesBuilder::new();
//! for _ in 0..10 {
//!     builder.push_instant([coffee]);
//!     builder.push_instant([tv]);
//! }
//! let series = builder.finish();
//!
//! // Only morning (offset 0) patterns, please.
//! let constraints = Constraints::none().at_offsets([0]);
//! let result = mine_constrained(
//!     &series, 2, &MineConfig::new(0.8).unwrap(), &constraints,
//! ).unwrap();
//! assert_eq!(result.len(), 1); // coffee@0; tv@1 was filtered out
//! ```

use ppm_timeseries::{FeatureId, FeatureSeries};

use crate::apriori::join_candidates;
use crate::error::{Error, Result};
use crate::hitset::build_tree;
use crate::hitset::MaxSubpatternTree;
use crate::letters::{Alphabet, LetterSet};
use crate::result::{FrequentPattern, MiningResult};
use crate::scan::{scan_frequent_letters, MineConfig, Scan1};
use crate::stats::MiningStats;

/// Constraints on the patterns to mine. `Default` means unconstrained.
#[derive(Debug, Clone, Default)]
pub struct Constraints {
    /// Only letters at these offsets may appear (succinct). `None` = all.
    pub offsets: Option<Vec<usize>>,
    /// Only these features may appear (succinct). `None` = all.
    pub features: Option<Vec<FeatureId>>,
    /// Every reported pattern must contain all of these letters.
    pub required: Vec<(usize, FeatureId)>,
    /// Maximum number of letters per pattern (anti-monotone). `None` = ∞.
    pub max_letters: Option<usize>,
}

impl Constraints {
    /// No constraints.
    pub fn none() -> Self {
        Self::default()
    }

    /// Restricts to the given offsets.
    pub fn at_offsets(mut self, offsets: impl IntoIterator<Item = usize>) -> Self {
        self.offsets = Some(offsets.into_iter().collect());
        self
    }

    /// Restricts to the given features.
    pub fn with_features(mut self, features: impl IntoIterator<Item = FeatureId>) -> Self {
        self.features = Some(features.into_iter().collect());
        self
    }

    /// Requires the given letter in every reported pattern.
    pub fn require(mut self, offset: usize, feature: FeatureId) -> Self {
        self.required.push((offset, feature));
        self
    }

    /// Caps pattern size.
    pub fn max_letters(mut self, n: usize) -> Self {
        self.max_letters = Some(n);
        self
    }

    fn admits(&self, offset: usize, feature: FeatureId) -> bool {
        self.offsets.as_ref().is_none_or(|o| o.contains(&offset))
            && self.features.as_ref().is_none_or(|f| f.contains(&feature))
    }
}

/// Mines all frequent patterns of `period` satisfying `constraints`, with
/// two scans (the hit-set pipeline). Counts are exact and identical to
/// filtering an unconstrained run; the constraints only *prune work*.
pub fn mine_constrained(
    series: &FeatureSeries,
    period: usize,
    config: &MineConfig,
    constraints: &Constraints,
) -> Result<MiningResult> {
    for &(offset, _) in &constraints.required {
        if offset >= period {
            return Err(Error::InvalidPeriod {
                period: offset + 1,
                series_len: period,
            });
        }
    }

    // Scan 1, then shrink the alphabet to the admissible letters (required
    // letters are always admissible — requiring a letter implies wanting
    // patterns that contain it).
    let scan1_full = scan_frequent_letters(series, period, config)?;
    let mut stats = MiningStats {
        series_scans: 1,
        max_level: 1,
        ..Default::default()
    };
    let admissible = (0..scan1_full.alphabet.len()).filter(|&i| {
        let (o, f) = scan1_full.alphabet.letter(i);
        constraints.admits(o, f) || constraints.required.contains(&(o, f))
    });
    let kept: Vec<usize> = admissible.collect();
    let alphabet = Alphabet::new(period, kept.iter().map(|&i| scan1_full.alphabet.letter(i)));
    let letter_counts: Vec<u64> = kept.iter().map(|&i| scan1_full.letter_counts[i]).collect();
    let scan1 = Scan1 {
        alphabet,
        letter_counts,
        segment_count: scan1_full.segment_count,
        min_count: scan1_full.min_count,
    };

    // Resolve the required letters against the (filtered) alphabet. A
    // required letter that is not frequent dooms every answer.
    let mut required = scan1.alphabet.empty_set();
    for &(o, f) in &constraints.required {
        match scan1.alphabet.index_of(o, f) {
            Some(idx) => required.insert(idx),
            None => {
                return Ok(empty_result(period, config, scan1, stats));
            }
        }
    }
    if let Some(cap) = constraints.max_letters {
        if required.len() > cap {
            return Ok(empty_result(period, config, scan1, stats));
        }
    }

    // Scan 2 over the reduced alphabet.
    let tree = build_tree(series, &scan1, &mut stats);
    stats.series_scans += 1;
    stats.tree_nodes = tree.node_count();
    stats.distinct_hits = tree.distinct_hits();
    stats.hit_insertions = tree.total_hits();

    // Derivation over the free letters, re-rooted at `required`.
    let cap = constraints.max_letters.unwrap_or(usize::MAX);
    let mut frequent: Vec<FrequentPattern> = Vec::new();

    let count_with_required = |extra: &[u32]| -> u64 {
        let mut set = required.clone();
        for &l in extra {
            set.insert(l as usize);
        }
        count_any(&tree, &scan1, &set)
    };

    // The required core itself (if non-empty and frequent).
    if !required.is_empty() {
        let core_count = count_any(&tree, &scan1, &required);
        if core_count < scan1.min_count {
            return Ok(empty_result(period, config, scan1, stats));
        }
        frequent.push(FrequentPattern {
            letters: required.clone(),
            count: core_count,
        });
    }

    let free: Vec<u32> = (0..scan1.alphabet.len() as u32)
        .filter(|&i| !required.contains(i as usize))
        .collect();

    // Level 1 over free letters (patterns of size |required| + 1).
    let mut level: Vec<Vec<u32>> = Vec::new();
    if required.len() < cap {
        for &l in &free {
            stats.subset_tests += 1;
            let count = count_with_required(&[l]);
            if count >= scan1.min_count {
                let mut set = required.clone();
                set.insert(l as usize);
                if required.is_empty() {
                    // Unconstrained singletons use exact scan-1 counts
                    // (count_any already handles this, but keep the letter
                    // count from scan 1 explicitly for clarity).
                    frequent.push(FrequentPattern {
                        letters: set,
                        count: scan1.letter_counts[l as usize],
                    });
                } else {
                    frequent.push(FrequentPattern {
                        letters: set,
                        count,
                    });
                }
                level.push(vec![l]);
            }
        }
    }

    // Level-wise expansion with Apriori pruning over the free letters.
    while !level.is_empty() && required.len() + level[0].len() < cap {
        let candidates = join_candidates(&level);
        stats.candidates_generated += candidates.len() as u64;
        if candidates.is_empty() {
            break;
        }
        stats.max_level = stats.max_level.max(required.len() + candidates[0].len());
        let mut next = Vec::new();
        for cand in candidates {
            stats.subset_tests += 1;
            let count = count_with_required(&cand);
            if count >= scan1.min_count {
                let mut set = required.clone();
                for &l in &cand {
                    set.insert(l as usize);
                }
                frequent.push(FrequentPattern {
                    letters: set,
                    count,
                });
                next.push(cand);
            }
        }
        level = next;
    }

    let mut result = MiningResult {
        period,
        segment_count: scan1.segment_count,
        min_confidence: config.min_confidence(),
        min_count: scan1.min_count,
        alphabet: scan1.alphabet,
        frequent,
        stats,
    };
    result.sort();
    Ok(result)
}

/// Counts a pattern of any size against scan-1 data and the tree.
fn count_any(tree: &MaxSubpatternTree, scan1: &Scan1, set: &LetterSet) -> u64 {
    match set.len() {
        0 => scan1.segment_count as u64,
        1 => scan1.letter_counts[set.first().expect("non-empty")],
        _ => tree.count_superpatterns_walk(set),
    }
}

fn empty_result(
    period: usize,
    config: &MineConfig,
    scan1: Scan1,
    stats: MiningStats,
) -> MiningResult {
    MiningResult {
        period,
        segment_count: scan1.segment_count,
        min_confidence: config.min_confidence(),
        min_count: scan1.min_count,
        alphabet: scan1.alphabet,
        frequent: Vec::new(),
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppm_timeseries::SeriesBuilder;

    fn fid(i: u32) -> FeatureId {
        FeatureId::from_raw(i)
    }

    /// Period 4; letters: (0,f0) ~0.9, (1,f1) ~0.8 co-occurring with f0,
    /// (2,f2) independent ~0.7.
    fn series() -> FeatureSeries {
        let mut b = SeriesBuilder::new();
        for j in 0..40u32 {
            b.push_instant(if j % 10 != 0 { vec![fid(0)] } else { vec![] });
            b.push_instant(if j % 5 != 0 { vec![fid(1)] } else { vec![] });
            b.push_instant(if j % 10 < 7 { vec![fid(2)] } else { vec![] });
            b.push_instant([]);
        }
        b.finish()
    }

    fn unconstrained() -> MiningResult {
        crate::hitset::mine(&series(), 4, &MineConfig::new(0.5).unwrap()).unwrap()
    }

    #[test]
    fn no_constraints_equals_plain_mining() {
        let plain = unconstrained();
        let constrained = mine_constrained(
            &series(),
            4,
            &MineConfig::new(0.5).unwrap(),
            &Constraints::none(),
        )
        .unwrap();
        assert_eq!(plain.frequent, constrained.frequent);
    }

    #[test]
    fn offset_constraint_filters_letters() {
        let got = mine_constrained(
            &series(),
            4,
            &MineConfig::new(0.5).unwrap(),
            &Constraints::none().at_offsets([0, 1]),
        )
        .unwrap();
        assert_eq!(got.alphabet.len(), 2);
        // Results are exactly the unconstrained patterns over offsets 0–1.
        let plain = unconstrained();
        let expect: Vec<u64> = plain
            .frequent
            .iter()
            .filter(|fp| fp.letters.iter().all(|i| plain.alphabet.letter(i).0 <= 1))
            .map(|fp| fp.count)
            .collect();
        let got_counts: Vec<u64> = got.frequent.iter().map(|fp| fp.count).collect();
        assert_eq!(got_counts.len(), expect.len());
        let mut a = got_counts.clone();
        let mut b = expect.clone();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn feature_constraint_filters_letters() {
        let got = mine_constrained(
            &series(),
            4,
            &MineConfig::new(0.5).unwrap(),
            &Constraints::none().with_features([fid(2)]),
        )
        .unwrap();
        assert_eq!(got.alphabet.len(), 1);
        assert_eq!(got.len(), 1);
        assert_eq!(got.alphabet.letter(0), (2, fid(2)));
    }

    #[test]
    fn required_letter_reroots_the_search() {
        let config = MineConfig::new(0.5).unwrap();
        let got = mine_constrained(
            &series(),
            4,
            &config,
            &Constraints::none().require(0, fid(0)),
        )
        .unwrap();
        // Every reported pattern contains (0, f0).
        let f0 = got.alphabet.index_of(0, fid(0)).unwrap();
        assert!(!got.is_empty());
        assert!(got.frequent.iter().all(|fp| fp.letters.contains(f0)));
        // Counts equal the unconstrained run's counts for the same sets.
        let plain = unconstrained();
        for fp in &got.frequent {
            let matching = plain
                .frequent
                .iter()
                .find(|p| {
                    p.letters.iter().collect::<Vec<_>>() == fp.letters.iter().collect::<Vec<_>>()
                })
                .expect("constrained pattern must exist unconstrained");
            assert_eq!(matching.count, fp.count);
        }
        // And nothing containing f0 was missed.
        let expect = plain
            .frequent
            .iter()
            .filter(|p| p.letters.contains(f0))
            .count();
        assert_eq!(got.len(), expect);
    }

    #[test]
    fn infrequent_required_letter_gives_empty_result() {
        let got = mine_constrained(
            &series(),
            4,
            &MineConfig::new(0.5).unwrap(),
            &Constraints::none().require(3, fid(9)),
        )
        .unwrap();
        assert!(got.is_empty());
    }

    #[test]
    fn required_offset_out_of_period_errors() {
        let r = mine_constrained(
            &series(),
            4,
            &MineConfig::new(0.5).unwrap(),
            &Constraints::none().require(4, fid(0)),
        );
        assert!(r.is_err());
    }

    #[test]
    fn max_letters_caps_derivation() {
        let config = MineConfig::new(0.5).unwrap();
        let capped =
            mine_constrained(&series(), 4, &config, &Constraints::none().max_letters(1)).unwrap();
        assert!(capped.frequent.iter().all(|fp| fp.letters.len() == 1));
        let plain = unconstrained();
        assert_eq!(
            capped.len(),
            plain
                .frequent
                .iter()
                .filter(|fp| fp.letters.len() == 1)
                .count()
        );
        // Cap below the required set size -> empty.
        let impossible = mine_constrained(
            &series(),
            4,
            &config,
            &Constraints::none()
                .require(0, fid(0))
                .require(1, fid(1))
                .max_letters(1),
        )
        .unwrap();
        assert!(impossible.is_empty());
    }

    #[test]
    fn builder_combinators_compose() {
        let c = Constraints::none()
            .at_offsets([0, 1, 2])
            .with_features([fid(0), fid(1)])
            .require(0, fid(0))
            .max_letters(3);
        assert_eq!(c.offsets.as_deref(), Some(&[0usize, 1, 2][..]));
        assert_eq!(c.required, vec![(0, fid(0))]);
        assert_eq!(c.max_letters, Some(3));
        assert!(c.admits(1, fid(1)));
        assert!(!c.admits(3, fid(1)));
        assert!(!c.admits(1, fid(2)));
    }
}
