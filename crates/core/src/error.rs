//! Error type for the mining layer.

use std::fmt;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced by mining configuration and execution.
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// The confidence threshold must lie in `(0, 1]`.
    InvalidConfidence {
        /// The offending value.
        value: f64,
    },
    /// A period of zero, or longer than the series, was requested.
    InvalidPeriod {
        /// The offending period.
        period: usize,
        /// Length of the series it was applied to.
        series_len: usize,
    },
    /// An empty or inverted period range was requested.
    InvalidPeriodRange {
        /// Lower bound.
        lo: usize,
        /// Upper bound.
        hi: usize,
    },
    /// A pattern string could not be parsed.
    PatternParse {
        /// Human-readable description of the problem.
        detail: String,
    },
    /// A pattern's period disagrees with the mining period.
    PeriodMismatch {
        /// The pattern's period.
        pattern_period: usize,
        /// The expected period.
        expected: usize,
    },
    /// An error bubbled up from the time-series substrate.
    Series(ppm_timeseries::Error),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidConfidence { value } => {
                write!(f, "min confidence must be in (0, 1], got {value}")
            }
            Error::InvalidPeriod { period, series_len } => write!(
                f,
                "invalid period {period} for series of length {series_len}"
            ),
            Error::InvalidPeriodRange { lo, hi } => {
                write!(f, "invalid period range {lo}..={hi}")
            }
            Error::PatternParse { detail } => write!(f, "pattern parse error: {detail}"),
            Error::PeriodMismatch { pattern_period, expected } => write!(
                f,
                "pattern has period {pattern_period}, expected {expected}"
            ),
            Error::Series(e) => write!(f, "series error: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Series(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ppm_timeseries::Error> for Error {
    fn from(e: ppm_timeseries::Error) -> Self {
        // Surface period problems under our own variant so callers can match
        // on a single error shape regardless of which layer noticed first.
        match e {
            ppm_timeseries::Error::InvalidPeriod { period, series_len } => {
                Error::InvalidPeriod { period, series_len }
            }
            other => Error::Series(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(Error::InvalidConfidence { value: 1.5 }.to_string().contains("1.5"));
        assert!(Error::InvalidPeriodRange { lo: 5, hi: 2 }.to_string().contains("5..=2"));
        assert!(Error::PeriodMismatch { pattern_period: 3, expected: 4 }
            .to_string()
            .contains("period 3"));
    }

    #[test]
    fn series_period_errors_are_remapped() {
        let e: Error =
            ppm_timeseries::Error::InvalidPeriod { period: 0, series_len: 9 }.into();
        assert!(matches!(e, Error::InvalidPeriod { period: 0, series_len: 9 }));
    }
}
