//! Error type for the mining layer.

use std::fmt;
use std::time::Duration;

use crate::stats::MiningStats;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced by mining configuration and execution.
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// The confidence threshold must lie in `(0, 1]`.
    InvalidConfidence {
        /// The offending value.
        value: f64,
    },
    /// A period of zero, or longer than the series, was requested.
    InvalidPeriod {
        /// The offending period.
        period: usize,
        /// Length of the series it was applied to.
        series_len: usize,
    },
    /// An empty or inverted period range was requested.
    InvalidPeriodRange {
        /// Lower bound.
        lo: usize,
        /// Upper bound.
        hi: usize,
    },
    /// A pattern string could not be parsed.
    PatternParse {
        /// Human-readable description of the problem.
        detail: String,
    },
    /// A pattern's period disagrees with the mining period.
    PeriodMismatch {
        /// The pattern's period.
        pattern_period: usize,
        /// The expected period.
        expected: usize,
    },
    /// An error bubbled up from the time-series substrate.
    Series(ppm_timeseries::Error),
    /// The wall-clock deadline ([`crate::MineConfig::with_deadline`]) passed
    /// before mining finished. Carries the statistics accumulated up to the
    /// abort point, so callers can report how far the run got.
    DeadlineExceeded {
        /// Wall-clock time elapsed when the run aborted.
        elapsed: Duration,
        /// Statistics accumulated before the abort.
        stats: Box<MiningStats>,
    },
    /// The max-subpattern tree outgrew the configured node budget
    /// ([`crate::MineConfig::with_max_tree_nodes`]). Carries the statistics
    /// accumulated up to the abort point.
    TreeBudgetExceeded {
        /// Node count observed when the check fired.
        nodes: usize,
        /// The configured budget it exceeded.
        budget: usize,
        /// Statistics accumulated before the abort.
        stats: Box<MiningStats>,
    },
    /// A worker thread panicked during parallel mining. The panic does not
    /// propagate; it is isolated and surfaced as this error.
    WorkerPanic {
        /// The panic payload, when it was a string; a placeholder otherwise.
        detail: String,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidConfidence { value } => {
                write!(f, "min confidence must be in (0, 1], got {value}")
            }
            Error::InvalidPeriod { period, series_len } => write!(
                f,
                "invalid period {period} for series of length {series_len}"
            ),
            Error::InvalidPeriodRange { lo, hi } => {
                write!(f, "invalid period range {lo}..={hi}")
            }
            Error::PatternParse { detail } => write!(f, "pattern parse error: {detail}"),
            Error::PeriodMismatch {
                pattern_period,
                expected,
            } => write!(
                f,
                "pattern has period {pattern_period}, expected {expected}"
            ),
            Error::Series(e) => write!(f, "series error: {e}"),
            Error::DeadlineExceeded { elapsed, .. } => {
                write!(f, "mining deadline exceeded after {elapsed:.2?}")
            }
            Error::TreeBudgetExceeded { nodes, budget, .. } => write!(
                f,
                "max-subpattern tree grew to {nodes} nodes, over the budget of {budget}"
            ),
            Error::WorkerPanic { detail } => {
                write!(f, "mining worker thread panicked: {detail}")
            }
        }
    }
}

impl Error {
    /// The partial [`MiningStats`] carried by resource-guard errors
    /// ([`Error::DeadlineExceeded`], [`Error::TreeBudgetExceeded`]), if any.
    /// Lets callers report progress made before an aborted run.
    pub fn partial_stats(&self) -> Option<&MiningStats> {
        match self {
            Error::DeadlineExceeded { stats, .. } | Error::TreeBudgetExceeded { stats, .. } => {
                Some(stats)
            }
            _ => None,
        }
    }

    /// Whether this error wraps a transient substrate failure (see
    /// [`ppm_timeseries::Error::is_transient`]) — worth retrying. Mining
    /// errors proper (bad config, guard violations, corruption) are not.
    pub fn is_transient(&self) -> bool {
        matches!(self, Error::Series(e) if e.is_transient())
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Series(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ppm_timeseries::Error> for Error {
    fn from(e: ppm_timeseries::Error) -> Self {
        // Surface period problems under our own variant so callers can match
        // on a single error shape regardless of which layer noticed first.
        match e {
            ppm_timeseries::Error::InvalidPeriod { period, series_len } => {
                Error::InvalidPeriod { period, series_len }
            }
            other => Error::Series(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(Error::InvalidConfidence { value: 1.5 }
            .to_string()
            .contains("1.5"));
        assert!(Error::InvalidPeriodRange { lo: 5, hi: 2 }
            .to_string()
            .contains("5..=2"));
        assert!(Error::PeriodMismatch {
            pattern_period: 3,
            expected: 4
        }
        .to_string()
        .contains("period 3"));
    }

    #[test]
    fn guard_errors_carry_partial_stats() {
        let stats = MiningStats {
            hit_insertions: 42,
            ..Default::default()
        };
        let e = Error::TreeBudgetExceeded {
            nodes: 10,
            budget: 5,
            stats: Box::new(stats.clone()),
        };
        assert_eq!(e.partial_stats().unwrap().hit_insertions, 42);
        assert!(e.to_string().contains("budget of 5"));
        let e = Error::DeadlineExceeded {
            elapsed: Duration::from_millis(7),
            stats: Box::new(stats),
        };
        assert!(e.partial_stats().is_some());
        assert!(e.to_string().contains("deadline exceeded"));
        assert!(Error::InvalidConfidence { value: 0.0 }
            .partial_stats()
            .is_none());
        assert!(Error::WorkerPanic {
            detail: "boom".into()
        }
        .to_string()
        .contains("boom"));
    }

    #[test]
    fn series_period_errors_are_remapped() {
        let e: Error = ppm_timeseries::Error::InvalidPeriod {
            period: 0,
            series_len: 9,
        }
        .into();
        assert!(matches!(
            e,
            Error::InvalidPeriod {
                period: 0,
                series_len: 9
            }
        ));
    }
}
