//! Maximal frequent pattern mining.
//!
//! §4 of the paper closes by observing that users often want only the
//! *maximal* frequent patterns, that Bayardo's MaxMiner [B98] is a good fit
//! — except that MaxMiner re-scans the database per level — and that "the
//! mixture of the max-subpattern hit set method and the MaxMiner can get
//! rid of this problem". This module implements exactly that hybrid:
//! MaxMiner's look-ahead search, with all candidate counting answered from
//! the max-subpattern tree, so the series is still scanned only twice.

use ppm_timeseries::FeatureSeries;

use crate::error::Result;
use crate::hitset::{build_tree, MaxSubpatternTree};
use crate::letters::{Alphabet, LetterSet};
use crate::result::{FrequentPattern, MiningResult};
use crate::scan::{scan_frequent_letters, MineConfig, Scan1};
use crate::stats::MiningStats;

/// Output of maximal-pattern mining.
#[derive(Debug, Clone)]
pub struct MaximalResult {
    /// The mined period.
    pub period: usize,
    /// Number of whole segments `m`.
    pub segment_count: usize,
    /// Count threshold used.
    pub min_count: u64,
    /// The frequent-letter alphabet.
    pub alphabet: Alphabet,
    /// The maximal frequent patterns (no frequent proper superpattern),
    /// sorted by (letter count, letters).
    pub maximal: Vec<FrequentPattern>,
    /// Instrumentation (two scans; `subset_tests` counts tree lookups).
    pub stats: MiningStats,
}

/// Mines only the **maximal** frequent patterns of `period` using the
/// hit-set × MaxMiner hybrid. Equivalent to filtering
/// [`MiningResult::maximal`] out of a full [`crate::hitset::mine`] run, but
/// prunes the search with MaxMiner's look-ahead: whenever `head ∪ tail` is
/// frequent, the whole subtree below `head` collapses to a single answer.
pub fn mine_maximal(
    series: &FeatureSeries,
    period: usize,
    config: &MineConfig,
) -> Result<MaximalResult> {
    let scan1 = scan_frequent_letters(series, period, config)?;
    let mut stats = MiningStats {
        series_scans: 1,
        max_level: 1,
        ..Default::default()
    };
    let tree = build_tree(series, &scan1, &mut stats);
    stats.series_scans += 1;
    stats.tree_nodes = tree.node_count();
    stats.distinct_hits = tree.distinct_hits();
    stats.hit_insertions = tree.total_hits();

    let maximal = max_miner(&tree, &scan1, &mut stats);

    Ok(MaximalResult {
        period,
        segment_count: scan1.segment_count,
        min_count: scan1.min_count,
        alphabet: scan1.alphabet,
        maximal,
        stats,
    })
}

/// Counts a pattern of any size: 0 letters → `m` (matches everything),
/// 1 letter → the exact scan-1 count, otherwise the tree.
///
/// The 1-letter special case matters: segments whose projection has a
/// single letter are *not* inserted in the tree (paper §4), so their counts
/// only exist in scan 1.
fn count_any(tree: &MaxSubpatternTree, scan1: &Scan1, set: &LetterSet) -> u64 {
    match set.len() {
        0 => scan1.segment_count as u64,
        1 => scan1.letter_counts[set.first().expect("non-empty")],
        _ => tree.count_superpatterns_walk(set),
    }
}

/// MaxMiner search over the letter alphabet with tree-backed counting.
fn max_miner(
    tree: &MaxSubpatternTree,
    scan1: &Scan1,
    stats: &mut MiningStats,
) -> Vec<FrequentPattern> {
    let n = scan1.alphabet.len();
    if n == 0 {
        return Vec::new();
    }
    // Order items by ascending support: expanding rare letters first keeps
    // tails long where look-ahead succeeds most often (Bayardo's heuristic).
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_by_key(|&i| scan1.letter_counts[i as usize]);

    struct Group {
        head: Vec<u32>,
        tail: Vec<u32>,
    }
    let mut frontier = vec![Group {
        head: Vec::new(),
        tail: order,
    }];
    let mut candidates: Vec<(LetterSet, u64)> = Vec::new();

    let set_of = |letters: &[u32]| LetterSet::from_indices(n, letters.iter().map(|&l| l as usize));

    while let Some(group) = frontier.pop() {
        // Look-ahead: if head ∪ tail is frequent, everything below is
        // subsumed by it.
        let mut whole: Vec<u32> = group.head.clone();
        whole.extend_from_slice(&group.tail);
        let whole_set = set_of(&whole);
        stats.subset_tests += 1;
        let whole_count = count_any(tree, scan1, &whole_set);
        if whole_count >= scan1.min_count {
            candidates.push((whole_set, whole_count));
            continue;
        }

        // Expand: extend head by each tail item, keeping only items that
        // stay frequent with the extended head in the new tail.
        for (i, &item) in group.tail.iter().enumerate() {
            let mut head = group.head.clone();
            head.push(item);
            let head_set = set_of(&head);
            stats.subset_tests += 1;
            let head_count = count_any(tree, scan1, &head_set);
            if head_count < scan1.min_count {
                continue;
            }
            let mut tail = Vec::new();
            for &later in &group.tail[i + 1..] {
                let mut probe = head.clone();
                probe.push(later);
                stats.subset_tests += 1;
                if count_any(tree, scan1, &set_of(&probe)) >= scan1.min_count {
                    tail.push(later);
                }
            }
            stats.max_level = stats.max_level.max(head.len());
            if tail.is_empty() {
                candidates.push((head_set, head_count));
            } else {
                frontier.push(Group { head, tail });
            }
        }
    }

    // Subsumption filter: keep only true maximal patterns, dedup first.
    candidates.sort_by_key(|c| std::cmp::Reverse(c.0.len()));
    candidates.dedup_by(|a, b| a.0 == b.0);
    let mut maximal: Vec<FrequentPattern> = Vec::new();
    for (set, count) in candidates {
        if !maximal.iter().any(|kept| set.is_subset(&kept.letters)) {
            maximal.push(FrequentPattern {
                letters: set,
                count,
            });
        }
    }
    maximal.sort_by(|a, b| {
        a.letters.len().cmp(&b.letters.len()).then_with(|| {
            a.letters
                .iter()
                .collect::<Vec<_>>()
                .cmp(&b.letters.iter().collect())
        })
    });
    maximal
}

/// Reference implementation: the maximal patterns of a full mining result
/// (cloned). Used to validate [`mine_maximal`] and available to callers who
/// already hold a complete [`MiningResult`].
pub fn maximal_of(result: &MiningResult) -> Vec<FrequentPattern> {
    result.maximal().into_iter().cloned().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppm_timeseries::{FeatureId, SeriesBuilder};

    fn fid(i: u32) -> FeatureId {
        FeatureId::from_raw(i)
    }

    fn assert_same_maximal(series: &FeatureSeries, period: usize, min_conf: f64) {
        let config = MineConfig::new(min_conf).unwrap();
        let full = crate::hitset::mine(series, period, &config).unwrap();
        let mut expect = maximal_of(&full);
        expect.sort_by(|a, b| {
            a.letters.len().cmp(&b.letters.len()).then_with(|| {
                a.letters
                    .iter()
                    .collect::<Vec<_>>()
                    .cmp(&b.letters.iter().collect())
            })
        });
        let got = mine_maximal(series, period, &config).unwrap();
        // The letter universes of the two runs are identical (same scan 1),
        // so FrequentPattern equality is meaningful.
        assert_eq!(got.maximal, expect, "min_conf={min_conf} period={period}");
    }

    #[test]
    fn single_long_pattern_collapses_via_lookahead() {
        let mut b = SeriesBuilder::new();
        for _ in 0..10 {
            for o in 0..6u32 {
                b.push_instant([fid(o)]);
            }
        }
        let s = b.finish();
        let config = MineConfig::new(0.9).unwrap();
        let got = mine_maximal(&s, 6, &config).unwrap();
        assert_eq!(got.maximal.len(), 1);
        assert_eq!(got.maximal[0].letters.len(), 6);
        assert_eq!(got.maximal[0].count, 10);
        // Look-ahead should have answered near-immediately: far fewer
        // lookups than the 2^6 subsets a naive search would count.
        assert!(
            got.stats.subset_tests < 20,
            "tests = {}",
            got.stats.subset_tests
        );
        assert_same_maximal(&s, 6, 0.9);
    }

    #[test]
    fn fragmented_patterns_match_reference() {
        let mut b = SeriesBuilder::new();
        let mut x: u64 = 5;
        for _ in 0..240 {
            let mut inst = Vec::new();
            for f in 0..5u32 {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                if (x >> 33).is_multiple_of(3) {
                    inst.push(fid(f));
                }
            }
            b.push_instant(inst);
        }
        let s = b.finish();
        for conf in [0.2, 0.35, 0.5, 0.8] {
            assert_same_maximal(&s, 6, conf);
        }
    }

    #[test]
    fn single_letters_can_be_maximal() {
        // Two letters that never co-occur in a segment.
        let mut b = SeriesBuilder::new();
        for j in 0..10 {
            if j % 2 == 0 {
                b.push_instant([fid(0)]);
                b.push_instant([]);
            } else {
                b.push_instant([]);
                b.push_instant([fid(1)]);
            }
        }
        let s = b.finish();
        let config = MineConfig::new(0.5).unwrap();
        let got = mine_maximal(&s, 2, &config).unwrap();
        assert_eq!(got.maximal.len(), 2);
        assert!(got.maximal.iter().all(|p| p.letters.len() == 1));
        assert_same_maximal(&s, 2, 0.5);
    }

    #[test]
    fn empty_series_alphabet() {
        let mut b = SeriesBuilder::new();
        for t in 0..8u32 {
            b.push_instant([fid(t)]);
        }
        let s = b.finish();
        let got = mine_maximal(&s, 2, &MineConfig::new(0.9).unwrap()).unwrap();
        assert!(got.maximal.is_empty());
    }
}
