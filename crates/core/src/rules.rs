//! Periodic association rules.
//!
//! §6 of the paper lists "mining periodic association rules based on
//! partial periodicity" among the natural follow-ons. A periodic rule
//! reads: *in a period segment, if the antecedent pattern holds, the
//! consequent letter also holds with probability `confidence`* — e.g. "on
//! days when Jim buys coffee at 7:00, he reads the paper at 7:30 with
//! confidence 0.93".
//!
//! Rules are generated from a completed [`MiningResult`] without touching
//! the series: for every frequent pattern `P` (≥ 2 letters) and every
//! letter `ℓ ∈ P`, the rule `P \ {ℓ} ⇒ ℓ` has confidence
//! `count(P) / count(P \ {ℓ})`. The antecedent's count is always available
//! because subpatterns of frequent patterns are frequent (Property 3.1).

use std::collections::HashMap;

use ppm_timeseries::FeatureCatalog;

use crate::letters::LetterSet;
use crate::pattern::Pattern;
use crate::result::MiningResult;

/// One periodic association rule `antecedent ⇒ consequent letter`.
#[derive(Debug, Clone, PartialEq)]
pub struct PeriodicRule {
    /// The antecedent pattern (≥ 1 letter).
    pub antecedent: LetterSet,
    /// The single letter added by the consequent.
    pub consequent: usize,
    /// Frequency count of antecedent ∪ {consequent} (the rule's support).
    pub support_count: u64,
    /// `count(antecedent ∪ {consequent}) / count(antecedent)`.
    pub confidence: f64,
}

impl PeriodicRule {
    /// Renders the rule using the result's alphabet and a catalog, e.g.
    /// `coffee * * => * paper *  (conf 0.93, support 28)`.
    pub fn display(&self, result: &MiningResult, catalog: &FeatureCatalog) -> String {
        let ante = Pattern::from_letter_set(&result.alphabet, &self.antecedent);
        let cons = Pattern::from_letter_set(
            &result.alphabet,
            &LetterSet::from_indices(self.antecedent.universe(), [self.consequent]),
        );
        format!(
            "{} => {}  (conf {:.3}, support {})",
            ante.display(catalog),
            cons.display(catalog),
            self.confidence,
            self.support_count
        )
    }
}

/// Generates all single-consequent periodic rules whose confidence is at
/// least `min_rule_confidence`, sorted by descending confidence then
/// descending support.
pub fn generate_rules(result: &MiningResult, min_rule_confidence: f64) -> Vec<PeriodicRule> {
    let counts: HashMap<&LetterSet, u64> = result
        .frequent
        .iter()
        .map(|fp| (&fp.letters, fp.count))
        .collect();

    let mut rules = Vec::new();
    for fp in &result.frequent {
        if fp.letters.len() < 2 {
            continue;
        }
        for letter in fp.letters.iter() {
            let mut antecedent = fp.letters.clone();
            antecedent.remove(letter);
            let ante_count = counts
                .get(&antecedent)
                .copied()
                .expect("subpattern of a frequent pattern must be frequent (Property 3.1)");
            let confidence = fp.count as f64 / ante_count as f64;
            if confidence >= min_rule_confidence {
                rules.push(PeriodicRule {
                    antecedent,
                    consequent: letter,
                    support_count: fp.count,
                    confidence,
                });
            }
        }
    }
    rules.sort_by(|a, b| {
        b.confidence
            .partial_cmp(&a.confidence)
            .expect("confidences are finite")
            .then(b.support_count.cmp(&a.support_count))
    });
    rules
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppm_timeseries::{FeatureId, SeriesBuilder};

    use crate::scan::MineConfig;

    fn fid(i: u32) -> FeatureId {
        FeatureId::from_raw(i)
    }

    /// f0 at offset 0 in every segment; f1 at offset 1 in 3 of 4 segments,
    /// always alongside f0.
    fn series() -> ppm_timeseries::FeatureSeries {
        let mut b = SeriesBuilder::new();
        for j in 0..8 {
            b.push_instant([fid(0)]);
            b.push_instant(if j % 4 == 0 { vec![] } else { vec![fid(1)] });
        }
        b.finish()
    }

    #[test]
    fn rule_confidence_is_conditional() {
        let result = crate::hitset::mine(&series(), 2, &MineConfig::new(0.5).unwrap()).unwrap();
        let rules = generate_rules(&result, 0.0);
        // Two rules from the pair {f0@0, f1@1}: f0 => f1 (6/8) and
        // f1 => f0 (6/6 = 1.0).
        assert_eq!(rules.len(), 2);
        let perfect = &rules[0];
        assert!((perfect.confidence - 1.0).abs() < 1e-12);
        assert_eq!(perfect.support_count, 6);
        let partial = &rules[1];
        assert!((partial.confidence - 0.75).abs() < 1e-12);
    }

    #[test]
    fn threshold_filters_rules() {
        let result = crate::hitset::mine(&series(), 2, &MineConfig::new(0.5).unwrap()).unwrap();
        let rules = generate_rules(&result, 0.9);
        assert_eq!(rules.len(), 1);
        assert!((rules[0].confidence - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rules_sorted_by_confidence() {
        let result = crate::hitset::mine(&series(), 2, &MineConfig::new(0.5).unwrap()).unwrap();
        let rules = generate_rules(&result, 0.0);
        for w in rules.windows(2) {
            assert!(w[0].confidence >= w[1].confidence);
        }
    }

    #[test]
    fn display_renders_readably() {
        let mut cat = ppm_timeseries::FeatureCatalog::new();
        cat.intern("coffee");
        cat.intern("paper");
        let result = crate::hitset::mine(&series(), 2, &MineConfig::new(0.5).unwrap()).unwrap();
        let rules = generate_rules(&result, 0.9);
        let text = rules[0].display(&result, &cat);
        assert!(text.contains("=>"), "{text}");
        assert!(text.contains("conf 1.000"), "{text}");
    }

    #[test]
    fn no_rules_from_singleton_patterns() {
        // A series where only 1-letter patterns are frequent.
        let mut b = SeriesBuilder::new();
        for j in 0..8 {
            b.push_instant([fid(0)]);
            b.push_instant(if j % 2 == 0 { vec![fid(1)] } else { vec![] });
        }
        let result = crate::hitset::mine(&b.finish(), 2, &MineConfig::new(0.9).unwrap()).unwrap();
        assert!(generate_rules(&result, 0.0).is_empty());
    }
}
