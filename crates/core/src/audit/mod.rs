//! Self-verifying mining: invariant auditing and differential recounting.
//!
//! PR-level fault tolerance catches *loud* failures — I/O errors, guard
//! trips, crashes. Nothing there defends against a *silent* wrong answer:
//! a miscounted hit set, a dropped candidate, or an input instant damaged
//! past the checksum layer produces confidently wrong patterns with no
//! signal at all. The paper supplies cheap, machine-checkable ground truth,
//! and this module turns it into an independent result checker:
//!
//! * **Invariant auditing** ([`invariants`]) — structural laws any correct
//!   [`MiningResult`] obeys: anti-monotone counts (the §3.1 Apriori
//!   property: `count(sub) ≥ count(super)` whenever `sub ⊆ super`),
//!   downward closure of the frequent set, `min_count ≤ count ≤ m` (i.e.
//!   confidence ∈ `[min_conf, 1]`), every letter inside `C_max`, no
//!   duplicates, and the Property 3.2 hit-set bookkeeping bounds.
//! * **Differential oracle** ([`oracle`]) — a deliberately naive recount
//!   engine: each reported pattern is decoded to its symbolic form and
//!   recounted by direct segment matching ([`Pattern::matches_segment`]),
//!   sharing no code with the letter-projection/tree path the miners use.
//!   Full recount, or a deterministic sample for large results.
//! * **Cross-algorithm diff** ([`cross_check`]) — mines the same input
//!   with the hit-set, Apriori, and streaming engines and diffs the
//!   outputs; the algorithms are proved equivalent in the paper, so any
//!   disagreement is a bug in one of them.
//!
//! Every violation carries enough rendered context (pattern text, counts,
//! segment indices) to reproduce it by hand. Audit outcomes emit
//! [`ppm_observe`] marks (`audit.verdict`, `audit.violation`) and counters
//! (`audit.checks`, `audit.violations`) so traces show verification cost
//! next to mining cost.

mod diff;
mod invariants;
mod oracle;

pub use diff::{cross_check, cross_check_view, CrossCheck};
pub use invariants::check_invariants;
pub use oracle::{recount_patterns, verify_claims, MISMATCH_SEGMENT_LIMIT};

use std::fmt;

use ppm_timeseries::{FeatureCatalog, FeatureSeries};

use crate::error::Result;
use crate::pattern::Pattern;
use crate::result::MiningResult;

/// Default number of patterns the sampled oracle recounts.
pub const DEFAULT_SAMPLE: usize = 64;

/// How much recounting the differential oracle performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuditMode {
    /// Recount every reported pattern and independently re-derive the
    /// frequent 1-patterns from the data.
    Full,
    /// Recount a deterministic sample of at most this many patterns
    /// (structural invariants are still checked in full).
    Sample(usize),
}

impl AuditMode {
    /// The sampled mode with the default budget.
    pub fn sample() -> AuditMode {
        AuditMode::Sample(DEFAULT_SAMPLE)
    }
}

/// One violated invariant, with enough context to reproduce it.
///
/// Pattern fields are pre-rendered with the run's feature catalog, so a
/// violation is meaningful on its own — no alphabet or catalog needed to
/// read it.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Violation {
    /// `sub ⊆ super` but `count(sub) < count(super)` — breaks the Apriori
    /// property (paper §3.1).
    AntiMonotonicity {
        /// The subpattern, rendered.
        sub: String,
        /// Its reported count.
        sub_count: u64,
        /// The superpattern, rendered.
        superpattern: String,
        /// Its reported count.
        super_count: u64,
    },
    /// A pattern's count exceeds the number of whole segments `m`
    /// (confidence would exceed 1).
    CountExceedsSegments {
        /// The pattern, rendered.
        pattern: String,
        /// Its reported count.
        count: u64,
        /// Number of whole segments `m`.
        segments: usize,
    },
    /// A reported pattern's count is below the frequency threshold
    /// (confidence would be below `min_conf`).
    BelowThreshold {
        /// The pattern, rendered.
        pattern: String,
        /// Its reported count.
        count: u64,
        /// The threshold it fails.
        min_count: u64,
    },
    /// The result's `min_count` does not equal `⌈min_conf · m⌉` as
    /// independently recomputed.
    ThresholdMismatch {
        /// The result's recorded threshold.
        min_count: u64,
        /// The independently recomputed threshold.
        expected: u64,
    },
    /// A pattern's letter set was built for a different universe than the
    /// result's alphabet — its letters cannot all lie inside `C_max`.
    ForeignLetters {
        /// Index of the offending pattern in `result.frequent`.
        pattern_index: usize,
        /// The set's universe size.
        universe: usize,
        /// The alphabet's letter count.
        alphabet_len: usize,
    },
    /// An empty pattern (no letters) was reported frequent.
    EmptyPattern {
        /// Index of the offending pattern in `result.frequent`.
        pattern_index: usize,
    },
    /// The same letter set appears more than once in the result.
    DuplicatePattern {
        /// The duplicated pattern, rendered.
        pattern: String,
    },
    /// A frequent pattern's immediate subpattern (one letter removed) is
    /// missing from the result — the frequent set must be downward closed
    /// (paper §3.1).
    MissingSubpattern {
        /// The frequent pattern, rendered.
        pattern: String,
        /// Its absent immediate subpattern, rendered.
        missing: String,
    },
    /// Hit-set statistics exceed the Property 3.2 bound
    /// `min(m, 2^|F1| − 1)`.
    HitSetBoundExceeded {
        /// Distinct hits the run recorded.
        distinct_hits: usize,
        /// The Property 3.2 bound.
        bound: u64,
    },
    /// More hit insertions than period segments — each segment contributes
    /// at most one hit (paper §3.1.2).
    ExcessHitInsertions {
        /// Hit insertions the run recorded.
        hit_insertions: u64,
        /// Number of whole segments `m`.
        segments: usize,
    },
    /// The oracle's independent recount disagrees with the reported count.
    CountMismatch {
        /// The pattern, rendered.
        pattern: String,
        /// The count the miner reported.
        reported: u64,
        /// The oracle's direct-match recount.
        recounted: u64,
        /// The first segment indices the oracle counts as matching (at
        /// most [`MISMATCH_SEGMENT_LIMIT`]) — reproduction starting points.
        segments: Vec<usize>,
    },
    /// A letter that is frequent in the data is missing from the result —
    /// a dropped candidate.
    MissingFrequentLetter {
        /// The letter as a 1-pattern, rendered.
        pattern: String,
        /// Its true count in the data.
        count: u64,
        /// The threshold it meets.
        min_count: u64,
    },
    /// Two algorithms disagree on the same input (cross-algorithm diff).
    AlgorithmMismatch {
        /// The baseline algorithm.
        left: &'static str,
        /// The disagreeing algorithm.
        right: &'static str,
        /// What differs, rendered.
        detail: String,
    },
    /// An exported claim's confidence field does not equal `count / m`.
    ConfidenceMismatch {
        /// The pattern, rendered.
        pattern: String,
        /// The confidence the export claims.
        claimed: f64,
        /// The confidence implied by its count.
        actual: f64,
    },
    /// An exported claim is internally inconsistent (letter or L-length
    /// fields disagree with its own pattern text).
    ClaimInconsistent {
        /// The pattern, rendered.
        pattern: String,
        /// What disagrees, rendered.
        detail: String,
    },
    /// An exported claim's pattern has a different period than the audit
    /// was asked to verify.
    ClaimPeriodMismatch {
        /// The pattern, rendered.
        pattern: String,
        /// The pattern's own period.
        pattern_period: usize,
        /// The period under verification.
        expected: usize,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::AntiMonotonicity {
                sub,
                sub_count,
                superpattern,
                super_count,
            } => write!(
                f,
                "anti-monotonicity: subpattern `{sub}` has count {sub_count} < \
                 superpattern `{superpattern}` count {super_count}"
            ),
            Violation::CountExceedsSegments {
                pattern,
                count,
                segments,
            } => write!(
                f,
                "count exceeds segments: `{pattern}` count {count} > m = {segments}"
            ),
            Violation::BelowThreshold {
                pattern,
                count,
                min_count,
            } => write!(
                f,
                "below threshold: `{pattern}` count {count} < min_count {min_count}"
            ),
            Violation::ThresholdMismatch {
                min_count,
                expected,
            } => write!(
                f,
                "threshold mismatch: result records min_count {min_count}, \
                 recomputation gives {expected}"
            ),
            Violation::ForeignLetters {
                pattern_index,
                universe,
                alphabet_len,
            } => write!(
                f,
                "foreign letters: pattern #{pattern_index} uses universe {universe}, \
                 alphabet has {alphabet_len} letters"
            ),
            Violation::EmptyPattern { pattern_index } => {
                write!(f, "empty pattern reported frequent at #{pattern_index}")
            }
            Violation::DuplicatePattern { pattern } => {
                write!(f, "duplicate pattern: `{pattern}` reported more than once")
            }
            Violation::MissingSubpattern { pattern, missing } => write!(
                f,
                "missing subpattern: `{pattern}` is frequent but its subpattern \
                 `{missing}` is not reported"
            ),
            Violation::HitSetBoundExceeded {
                distinct_hits,
                bound,
            } => write!(
                f,
                "hit-set bound exceeded: {distinct_hits} distinct hits > \
                 Property 3.2 bound {bound}"
            ),
            Violation::ExcessHitInsertions {
                hit_insertions,
                segments,
            } => write!(
                f,
                "excess hit insertions: {hit_insertions} insertions > m = {segments} segments"
            ),
            Violation::CountMismatch {
                pattern,
                reported,
                recounted,
                segments,
            } => write!(
                f,
                "count mismatch: `{pattern}` reported {reported}, oracle recounted \
                 {recounted} (disagreeing segments: {segments:?})"
            ),
            Violation::MissingFrequentLetter {
                pattern,
                count,
                min_count,
            } => write!(
                f,
                "missing frequent letter: `{pattern}` occurs in {count} segments \
                 (≥ min_count {min_count}) but is not reported"
            ),
            Violation::AlgorithmMismatch {
                left,
                right,
                detail,
            } => write!(f, "algorithm mismatch: {left} vs {right}: {detail}"),
            Violation::ConfidenceMismatch {
                pattern,
                claimed,
                actual,
            } => write!(
                f,
                "confidence mismatch: `{pattern}` claims {claimed:.6}, \
                 count implies {actual:.6}"
            ),
            Violation::ClaimInconsistent { pattern, detail } => {
                write!(f, "inconsistent claim: `{pattern}`: {detail}")
            }
            Violation::ClaimPeriodMismatch {
                pattern,
                pattern_period,
                expected,
            } => write!(
                f,
                "claim period mismatch: `{pattern}` has period {pattern_period}, \
                 verifying period {expected}"
            ),
        }
    }
}

/// The outcome of one audit pass.
#[derive(Debug, Clone)]
pub struct AuditReport {
    /// Total individual checks performed (a rough effort measure).
    pub checks: u64,
    /// Number of patterns the oracle recounted.
    pub recounted: usize,
    /// Whether the oracle sampled (`true`) or recounted everything.
    pub sampled: bool,
    /// Every violation found, in discovery order.
    pub violations: Vec<Violation>,
}

impl AuditReport {
    /// An empty report.
    pub fn new() -> Self {
        AuditReport {
            checks: 0,
            recounted: 0,
            sampled: false,
            violations: Vec::new(),
        }
    }

    /// Whether no invariant was violated.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Records a violation (and its observability mark).
    pub(crate) fn push(&mut self, v: Violation) {
        ppm_observe::counter("audit.violations", 1);
        ppm_observe::mark("audit.violation", || v.to_string());
        self.violations.push(v);
    }

    /// One-line verdict for reports and logs.
    pub fn summary(&self) -> String {
        let mode = if self.sampled { "sampled" } else { "full" };
        if self.is_clean() {
            format!(
                "clean — {} checks, {} patterns recounted ({mode})",
                self.checks, self.recounted
            )
        } else {
            format!(
                "{} violations in {} checks, {} patterns recounted ({mode})",
                self.violations.len(),
                self.checks,
                self.recounted
            )
        }
    }

    /// Folds another report into this one.
    pub fn absorb(&mut self, other: AuditReport) {
        self.checks += other.checks;
        self.recounted += other.recounted;
        self.sampled |= other.sampled;
        self.violations.extend(other.violations);
    }
}

impl Default for AuditReport {
    fn default() -> Self {
        Self::new()
    }
}

/// Audits `result` against the series it was mined from: all structural
/// invariants, plus the differential oracle's recount under `mode`.
///
/// Returns an error only when the result's period is invalid for the
/// series (nothing can be recounted); violations — however damning — are
/// reported, not errored.
pub fn audit(
    series: &FeatureSeries,
    result: &MiningResult,
    catalog: &FeatureCatalog,
    mode: AuditMode,
) -> Result<AuditReport> {
    let span = ppm_observe::span("audit.run");
    let mut report = AuditReport::new();
    check_invariants(result, catalog, &mut report);
    recount_patterns(series, result, catalog, mode, &mut report)?;
    ppm_observe::counter("audit.checks", report.checks);
    ppm_observe::mark("audit.verdict", || report.summary());
    drop(span);
    Ok(report)
}

/// Renders a pattern for violation context, falling back to `f{raw}`
/// placeholders for ids the catalog does not know.
pub(crate) fn render(pattern: &Pattern, catalog: &FeatureCatalog) -> String {
    pattern.display(catalog).to_string()
}
