//! The differential oracle: a deliberately naive, independent recount.
//!
//! The miners count through the letter alphabet — instants are projected
//! onto `C_max` bitsets and counted via the max-subpattern tree or
//! level-wise subset tests. A bug anywhere along that shared path produces
//! wrong counts *consistently*, so re-running a miner cannot detect it.
//!
//! This oracle shares none of that machinery: each audited pattern is
//! decoded to its symbolic form and counted by walking the raw period
//! segments with [`Pattern::matches_segment`] — per-instant binary searches
//! on the untouched feature lists, exactly the definition of frequency in
//! paper §2. Slow and proud of it; the Θ(n)-checker literature calls this
//! the trusted half of a certifying computation.

use std::collections::{HashMap, HashSet};

use ppm_timeseries::{FeatureCatalog, FeatureId, FeatureSeries};

use crate::error::{Error, Result};
use crate::export::PatternClaim;
use crate::pattern::{Pattern, Symbol};
use crate::result::MiningResult;

use super::invariants::expected_min_count;
use super::{render, AuditMode, AuditReport, Violation};

/// Maximum matching-segment indices a [`Violation::CountMismatch`] carries.
pub const MISMATCH_SEGMENT_LIMIT: usize = 8;

/// Deterministic stride sample: `cap` evenly spaced indices out of `len`.
/// No RNG — the same result is always audited the same way.
fn sample_indices(len: usize, cap: usize) -> Vec<usize> {
    if len <= cap {
        (0..len).collect()
    } else {
        (0..cap).map(|i| i * len / cap).collect()
    }
}

/// Counts the segments of `series` (period taken from `pattern`) that
/// `pattern` matches, returning the count and the first
/// [`MISMATCH_SEGMENT_LIMIT`] matching segment indices.
fn direct_count(series: &FeatureSeries, pattern: &Pattern) -> Result<(u64, Vec<usize>)> {
    let segments = series.segments(pattern.period()).map_err(Error::Series)?;
    let mut count = 0u64;
    let mut matched = Vec::new();
    for seg in segments.iter() {
        if pattern.matches_segment(&seg) {
            count += 1;
            if matched.len() < MISMATCH_SEGMENT_LIMIT {
                matched.push(seg.index());
            }
        }
    }
    Ok((count, matched))
}

/// Recounts the reported patterns of `result` directly against `series`,
/// appending [`Violation::CountMismatch`]s to `report`. In
/// [`AuditMode::Full`] it also re-derives the frequent 1-patterns from the
/// raw data and flags any the result dropped.
pub fn recount_patterns(
    series: &FeatureSeries,
    result: &MiningResult,
    catalog: &FeatureCatalog,
    mode: AuditMode,
    report: &mut AuditReport,
) -> Result<()> {
    let _span = ppm_observe::span("audit.oracle");
    let picks = match mode {
        AuditMode::Full => sample_indices(result.frequent.len(), usize::MAX),
        AuditMode::Sample(cap) => {
            report.sampled = true;
            sample_indices(result.frequent.len(), cap.max(1))
        }
    };
    for i in picks {
        let fp = &result.frequent[i];
        if fp.letters.universe() != result.alphabet.len() || fp.letters.is_empty() {
            continue; // already flagged by the invariant pass
        }
        report.checks += 1;
        report.recounted += 1;
        let pattern = Pattern::from_letter_set(&result.alphabet, &fp.letters);
        let (recounted, segments) = direct_count(series, &pattern)?;
        if recounted != fp.count {
            report.push(Violation::CountMismatch {
                pattern: render(&pattern, catalog),
                reported: fp.count,
                recounted,
                segments,
            });
        }
    }

    if mode == AuditMode::Full {
        missing_letter_sweep(series, result, catalog, report)?;
    }
    Ok(())
}

/// Independently re-derives `F1` — one pass over the whole segments,
/// counting every `(offset, feature)` occurrence — and flags frequent
/// letters the result fails to report. Catches the "dropped candidate"
/// failure class the per-pattern recount cannot see.
fn missing_letter_sweep(
    series: &FeatureSeries,
    result: &MiningResult,
    catalog: &FeatureCatalog,
    report: &mut AuditReport,
) -> Result<()> {
    let period = result.period;
    let segments = series.segments(period).map_err(Error::Series)?;
    let mut counts: HashMap<(usize, FeatureId), u64> = HashMap::new();
    for seg in segments.iter() {
        for offset in 0..period {
            for &f in seg.at(offset) {
                *counts.entry((offset, f)).or_insert(0) += 1;
            }
        }
    }
    let singletons: HashSet<usize> = result
        .frequent
        .iter()
        .filter(|fp| fp.letters.universe() == result.alphabet.len() && fp.letters.len() == 1)
        .filter_map(|fp| fp.letters.first())
        .collect();
    for ((offset, feature), count) in counts {
        report.checks += 1;
        if count < result.min_count {
            continue;
        }
        let reported = result
            .alphabet
            .index_of(offset, feature)
            .is_some_and(|idx| singletons.contains(&idx));
        if !reported {
            let mut symbols = vec![Symbol::Star; period];
            symbols[offset] = Symbol::letters([feature]);
            report.push(Violation::MissingFrequentLetter {
                pattern: render(&Pattern::new(symbols), catalog),
                count,
                min_count: result.min_count,
            });
        }
    }
    Ok(())
}

/// Verifies exported claims (parsed from a patterns TSV) against the
/// input they were allegedly mined from: per-claim recounts under `mode`,
/// confidence arithmetic, threshold and range checks, internal
/// consistency, duplicates, and pairwise anti-monotonicity.
///
/// This is the engine behind `ppm verify`: it trusts nothing from the
/// export but the claims themselves.
pub fn verify_claims(
    series: &FeatureSeries,
    period: usize,
    min_conf: f64,
    claims: &[PatternClaim],
    catalog: &FeatureCatalog,
    mode: AuditMode,
) -> Result<AuditReport> {
    let _span = ppm_observe::span("audit.verify");
    let mut report = AuditReport::new();
    let segments = series.segments(period).map_err(Error::Series)?;
    let m = segments.count();
    let min_count = expected_min_count(min_conf, m);

    let recount_set: HashSet<usize> = match mode {
        AuditMode::Full => (0..claims.len()).collect(),
        AuditMode::Sample(cap) => {
            report.sampled = true;
            sample_indices(claims.len(), cap.max(1))
                .into_iter()
                .collect()
        }
    };

    let mut seen: HashMap<&Pattern, usize> = HashMap::with_capacity(claims.len());
    for (i, claim) in claims.iter().enumerate() {
        let text = render(&claim.pattern, catalog);
        report.checks += 4;
        if claim.pattern.period() != period {
            report.push(Violation::ClaimPeriodMismatch {
                pattern: text,
                pattern_period: claim.pattern.period(),
                expected: period,
            });
            continue;
        }
        if claim.letters != claim.pattern.letter_count()
            || claim.l_length != claim.pattern.l_length()
        {
            report.push(Violation::ClaimInconsistent {
                pattern: text.clone(),
                detail: format!(
                    "row says {} letters / L-length {}, pattern text has {} / {}",
                    claim.letters,
                    claim.l_length,
                    claim.pattern.letter_count(),
                    claim.pattern.l_length()
                ),
            });
        }
        if claim.count > m as u64 {
            report.push(Violation::CountExceedsSegments {
                pattern: text.clone(),
                count: claim.count,
                segments: m,
            });
        }
        if claim.count < min_count {
            report.push(Violation::BelowThreshold {
                pattern: text.clone(),
                count: claim.count,
                min_count,
            });
        }
        let actual_conf = if m == 0 {
            0.0
        } else {
            claim.count as f64 / m as f64
        };
        // The TSV rounds to six decimals; allow exactly that much slack.
        if (claim.confidence - actual_conf).abs() > 1e-6 {
            report.push(Violation::ConfidenceMismatch {
                pattern: text.clone(),
                claimed: claim.confidence,
                actual: actual_conf,
            });
        }
        if seen.insert(&claim.pattern, i).is_some() {
            report.push(Violation::DuplicatePattern {
                pattern: text.clone(),
            });
        }
        if recount_set.contains(&i) {
            report.checks += 1;
            report.recounted += 1;
            let (recounted, matched) = direct_count(series, &claim.pattern)?;
            if recounted != claim.count {
                report.push(Violation::CountMismatch {
                    pattern: text,
                    reported: claim.count,
                    recounted,
                    segments: matched,
                });
            }
        }
    }

    // Pairwise anti-monotonicity over the claimed counts.
    for a in claims {
        for b in claims {
            if a.pattern.period() != period || b.pattern.period() != period {
                continue;
            }
            if a.pattern != b.pattern && a.pattern.is_subpattern_of(&b.pattern) {
                report.checks += 1;
                if a.count < b.count {
                    report.push(Violation::AntiMonotonicity {
                        sub: render(&a.pattern, catalog),
                        sub_count: a.count,
                        superpattern: render(&b.pattern, catalog),
                        super_count: b.count,
                    });
                }
            }
        }
    }
    ppm_observe::counter("audit.checks", report.checks);
    ppm_observe::mark("audit.verdict", || report.summary());
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::export::{parse_patterns_tsv, patterns_tsv};
    use crate::scan::MineConfig;
    use ppm_timeseries::SeriesBuilder;

    fn mined() -> (FeatureSeries, MiningResult, FeatureCatalog) {
        let mut catalog = FeatureCatalog::new();
        let a = catalog.intern("alpha");
        let b = catalog.intern("beta");
        let mut builder = SeriesBuilder::new();
        for j in 0..24 {
            builder.push_instant([a]);
            builder.push_instant(if j % 3 != 0 { vec![b] } else { vec![] });
        }
        let series = builder.finish();
        let result = crate::hitset::mine(&series, 2, &MineConfig::new(0.5).unwrap()).unwrap();
        (series, result, catalog)
    }

    #[test]
    fn clean_result_recounts_clean() {
        let (series, result, catalog) = mined();
        for mode in [AuditMode::Full, AuditMode::Sample(2)] {
            let mut report = AuditReport::new();
            recount_patterns(&series, &result, &catalog, mode, &mut report).unwrap();
            assert!(report.is_clean(), "{mode:?}: {:?}", report.violations);
            assert!(report.recounted > 0);
        }
    }

    #[test]
    fn count_bump_is_caught_with_segment_context() {
        let (series, mut result, catalog) = mined();
        result.frequent[0].count += 1;
        let mut report = AuditReport::new();
        recount_patterns(&series, &result, &catalog, AuditMode::Full, &mut report).unwrap();
        let v = report
            .violations
            .iter()
            .find_map(|v| match v {
                Violation::CountMismatch {
                    reported,
                    recounted,
                    segments,
                    ..
                } => Some((*reported, *recounted, segments.clone())),
                _ => None,
            })
            .expect("bumped count must be flagged");
        assert_eq!(v.0, v.1 + 1);
        assert!(v.2.len() <= MISMATCH_SEGMENT_LIMIT);
    }

    #[test]
    fn dropped_frequent_letter_is_caught_in_full_mode() {
        let (series, mut result, catalog) = mined();
        // Drop every pattern touching the first letter, alphabet included.
        result.frequent.retain(|fp| !fp.letters.contains(0));
        let mut report = AuditReport::new();
        recount_patterns(&series, &result, &catalog, AuditMode::Full, &mut report).unwrap();
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::MissingFrequentLetter { .. })));
    }

    #[test]
    fn sample_mode_skips_the_letter_sweep() {
        let (series, mut result, catalog) = mined();
        result.frequent.retain(|fp| !fp.letters.contains(0));
        let mut report = AuditReport::new();
        recount_patterns(
            &series,
            &result,
            &catalog,
            AuditMode::Sample(64),
            &mut report,
        )
        .unwrap();
        assert!(report.sampled);
        assert!(!report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::MissingFrequentLetter { .. })));
    }

    #[test]
    fn sample_indices_are_deterministic_and_bounded() {
        assert_eq!(sample_indices(5, 10), vec![0, 1, 2, 3, 4]);
        let s = sample_indices(1000, 8);
        assert_eq!(s.len(), 8);
        assert_eq!(s, sample_indices(1000, 8));
        assert!(s.windows(2).all(|w| w[0] < w[1]));
        assert!(s.iter().all(|&i| i < 1000));
    }

    #[test]
    fn verify_claims_round_trips_an_export() {
        let (series, result, catalog) = mined();
        let tsv = patterns_tsv(&result, &catalog);
        let mut catalog2 = catalog.clone();
        let claims = parse_patterns_tsv(&tsv, &mut catalog2).unwrap();
        assert_eq!(claims.len(), result.len());
        let report = verify_claims(
            &series,
            result.period,
            result.min_confidence,
            &claims,
            &catalog2,
            AuditMode::Full,
        )
        .unwrap();
        assert!(report.is_clean(), "{:?}", report.violations);
    }

    #[test]
    fn verify_claims_flags_tampered_counts_and_confidences() {
        let (series, result, catalog) = mined();
        let tsv = patterns_tsv(&result, &catalog);
        let mut catalog2 = catalog.clone();
        let mut claims = parse_patterns_tsv(&tsv, &mut catalog2).unwrap();
        claims[0].count += 1;
        let report = verify_claims(
            &series,
            result.period,
            result.min_confidence,
            &claims,
            &catalog2,
            AuditMode::Full,
        )
        .unwrap();
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::CountMismatch { .. })));
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::ConfidenceMismatch { .. })));
    }

    #[test]
    fn verify_claims_flags_wrong_period_rows() {
        let (series, result, catalog) = mined();
        let tsv = patterns_tsv(&result, &catalog);
        let mut catalog2 = catalog.clone();
        let claims = parse_patterns_tsv(&tsv, &mut catalog2).unwrap();
        let report = verify_claims(&series, 3, 0.5, &claims, &catalog2, AuditMode::Full).unwrap();
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::ClaimPeriodMismatch { .. })));
    }
}
