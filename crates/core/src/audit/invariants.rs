//! Structural invariants any correct [`MiningResult`] obeys.
//!
//! These checks need no second look at the data: they are laws the paper
//! proves about the *shape* of a correct answer. Θ(k²) in the number of
//! frequent patterns for the pairwise anti-monotonicity sweep — the same
//! budget [`MiningResult::maximal`] already spends — and linear for
//! everything else.

use std::collections::HashMap;

use ppm_timeseries::FeatureCatalog;

use crate::letters::LetterSet;
use crate::pattern::Pattern;
use crate::result::MiningResult;
use crate::stats::hit_set_bound;

use super::{render, AuditReport, Violation};

/// Recomputes the frequency threshold from first principles: the least
/// integer `c ≥ min_conf · m`, at minimum 1. Deliberately re-derived here
/// (not delegated to [`crate::MineConfig`]) so a bug in the shared
/// threshold arithmetic cannot hide from its own auditor.
pub(super) fn expected_min_count(min_conf: f64, m: usize) -> u64 {
    let raw = min_conf * m as f64;
    let mut c = raw.ceil() as u64;
    while (c as f64) + 1e-9 < raw {
        c += 1;
    }
    while c > 0 && ((c - 1) as f64) + 1e-9 >= raw {
        c -= 1;
    }
    c.max(1)
}

/// Runs every structural check on `result`, appending violations to
/// `report`. The series is not consulted — see
/// [`super::recount_patterns`] for the data-facing half.
pub fn check_invariants(result: &MiningResult, catalog: &FeatureCatalog, report: &mut AuditReport) {
    let _span = ppm_observe::span("audit.invariants");
    let m = result.segment_count;
    let text = |set: &LetterSet| render(&Pattern::from_letter_set(&result.alphabet, set), catalog);

    // Threshold arithmetic: min_count must be the least count meeting the
    // confidence threshold.
    report.checks += 1;
    let expected = expected_min_count(result.min_confidence, m);
    if result.min_count != expected {
        report.push(Violation::ThresholdMismatch {
            min_count: result.min_count,
            expected,
        });
    }

    // Per-pattern range and encoding checks.
    let n = result.alphabet.len();
    let mut seen: HashMap<LetterSet, usize> = HashMap::with_capacity(result.frequent.len());
    for (i, fp) in result.frequent.iter().enumerate() {
        report.checks += 4;
        if fp.letters.universe() != n {
            report.push(Violation::ForeignLetters {
                pattern_index: i,
                universe: fp.letters.universe(),
                alphabet_len: n,
            });
            // The remaining checks decode letters against the alphabet;
            // skip them for a set from another universe.
            continue;
        }
        if fp.letters.is_empty() {
            report.push(Violation::EmptyPattern { pattern_index: i });
            continue;
        }
        if fp.count > m as u64 {
            report.push(Violation::CountExceedsSegments {
                pattern: text(&fp.letters),
                count: fp.count,
                segments: m,
            });
        }
        if fp.count < result.min_count {
            report.push(Violation::BelowThreshold {
                pattern: text(&fp.letters),
                count: fp.count,
                min_count: result.min_count,
            });
        }
        if seen.insert(fp.letters.clone(), i).is_some() {
            report.push(Violation::DuplicatePattern {
                pattern: text(&fp.letters),
            });
        }
    }

    // Anti-monotonicity (§3.1): every subset relation must carry
    // count(sub) ≥ count(super).
    for a in &result.frequent {
        for b in &result.frequent {
            if a.letters.universe() != n || b.letters.universe() != n {
                continue;
            }
            if a.letters.len() < b.letters.len() && a.letters.is_subset(&b.letters) {
                report.checks += 1;
                if a.count < b.count {
                    report.push(Violation::AntiMonotonicity {
                        sub: text(&a.letters),
                        sub_count: a.count,
                        superpattern: text(&b.letters),
                        super_count: b.count,
                    });
                }
            }
        }
    }

    // Downward closure (§3.1): removing any one letter from a frequent
    // pattern must leave a reported frequent pattern.
    for fp in &result.frequent {
        if fp.letters.universe() != n || fp.letters.len() < 2 {
            continue;
        }
        for idx in fp.letters.iter() {
            report.checks += 1;
            let mut sub = fp.letters.clone();
            sub.remove(idx);
            if !seen.contains_key(&sub) {
                report.push(Violation::MissingSubpattern {
                    pattern: text(&fp.letters),
                    missing: text(&sub),
                });
            }
        }
    }

    // Property 3.2 bookkeeping: the hit set is bounded by min(m, 2^|F1|−1)
    // and each segment inserts at most one hit.
    report.checks += 2;
    let bound = hit_set_bound(m as u64, n as u32);
    if result.stats.distinct_hits as u64 > bound {
        report.push(Violation::HitSetBoundExceeded {
            distinct_hits: result.stats.distinct_hits,
            bound,
        });
    }
    if result.stats.hit_insertions > m as u64 {
        report.push(Violation::ExcessHitInsertions {
            hit_insertions: result.stats.hit_insertions,
            segments: m,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::result::FrequentPattern;
    use crate::scan::MineConfig;
    use crate::stats::MiningStats;
    use ppm_timeseries::SeriesBuilder;

    fn mined() -> (MiningResult, FeatureCatalog) {
        let mut catalog = FeatureCatalog::new();
        let a = catalog.intern("alpha");
        let b = catalog.intern("beta");
        let mut builder = SeriesBuilder::new();
        for j in 0..12 {
            builder.push_instant([a]);
            builder.push_instant(if j % 3 != 0 { vec![b] } else { vec![] });
        }
        let series = builder.finish();
        let result = crate::hitset::mine(&series, 2, &MineConfig::new(0.5).unwrap()).unwrap();
        (result, catalog)
    }

    fn check(result: &MiningResult, catalog: &FeatureCatalog) -> AuditReport {
        let mut report = AuditReport::new();
        check_invariants(result, catalog, &mut report);
        report
    }

    #[test]
    fn clean_result_passes() {
        let (result, catalog) = mined();
        let report = check(&result, &catalog);
        assert!(report.is_clean(), "{:?}", report.violations);
        assert!(report.checks > 0);
    }

    #[test]
    fn expected_min_count_matches_mineconfig_over_a_grid() {
        for conf_millis in [1u32, 125, 250, 333, 500, 666, 750, 800, 999, 1000] {
            let conf = conf_millis as f64 / 1000.0;
            let config = MineConfig::new(conf).unwrap();
            for m in 0..200usize {
                assert_eq!(
                    expected_min_count(conf, m),
                    config.min_count(m),
                    "conf={conf} m={m}"
                );
            }
        }
    }

    #[test]
    fn count_bump_breaks_anti_monotonicity_or_range() {
        let (mut result, catalog) = mined();
        // Bump the largest pattern past its subpatterns' counts.
        let last = result.frequent.len() - 1;
        result.frequent[last].count = result.segment_count as u64 + 5;
        let report = check(&result, &catalog);
        assert!(!report.is_clean());
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::CountExceedsSegments { .. })));
    }

    #[test]
    fn below_threshold_is_flagged() {
        let (mut result, catalog) = mined();
        result.frequent[0].count = 0;
        let report = check(&result, &catalog);
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::BelowThreshold { .. })));
    }

    #[test]
    fn duplicate_and_empty_patterns_are_flagged() {
        let (mut result, catalog) = mined();
        let dup = result.frequent[0].clone();
        result.frequent.push(dup);
        result.frequent.push(FrequentPattern {
            letters: result.alphabet.empty_set(),
            count: result.min_count,
        });
        let report = check(&result, &catalog);
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::DuplicatePattern { .. })));
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::EmptyPattern { .. })));
    }

    #[test]
    fn dropped_subpattern_breaks_closure() {
        let (mut result, catalog) = mined();
        // Remove a singleton that supports a larger pattern.
        let max_len = result.max_letter_count();
        if max_len < 2 {
            return; // sample too small to exercise closure
        }
        result.frequent.retain(|fp| fp.letters.len() != 1);
        let report = check(&result, &catalog);
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::MissingSubpattern { .. })));
    }

    #[test]
    fn foreign_universe_is_flagged() {
        let (mut result, catalog) = mined();
        result.frequent.push(FrequentPattern {
            letters: LetterSet::from_indices(99, [42]),
            count: result.min_count,
        });
        let report = check(&result, &catalog);
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::ForeignLetters { .. })));
    }

    #[test]
    fn threshold_tampering_is_flagged() {
        let (mut result, catalog) = mined();
        result.min_count += 3;
        let report = check(&result, &catalog);
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::ThresholdMismatch { .. })));
    }

    #[test]
    fn hit_stats_over_bound_are_flagged() {
        let (mut result, catalog) = mined();
        result.stats = MiningStats {
            distinct_hits: 10_000,
            hit_insertions: 10_000,
            ..result.stats.clone()
        };
        let report = check(&result, &catalog);
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::HitSetBoundExceeded { .. })));
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::ExcessHitInsertions { .. })));
    }
}
