//! Cross-algorithm differential harness.
//!
//! The paper proves Algorithms 3.1 (Apriori) and 3.2 (max-subpattern hit
//! set) compute the *same* frequent set with the *same* counts; the
//! streaming engines are refactorings of the same algorithms over a
//! [`ppm_timeseries::SeriesSource`], and the vertical engine
//! ([`crate::vertical`]) recounts the same definition columnarly. Running
//! all of them on the same input and diffing the outputs is therefore a
//! free correctness oracle: any disagreement is a bug in at least one
//! engine, found without knowing which answer is right.

use std::collections::HashMap;

use ppm_timeseries::{
    EncodedSeries, EncodedSeriesView, FeatureCatalog, FeatureSeries, MemorySource,
};

use crate::letters::LetterSet;
use crate::pattern::Pattern;
use crate::result::MiningResult;
use crate::scan::MineConfig;

use super::{render, AuditReport, Violation};

/// Mismatch detail lines reported per algorithm pair before truncating.
const DETAIL_LIMIT: usize = 12;

/// The outcome of one cross-algorithm diff.
#[derive(Debug, Clone)]
pub struct CrossCheck {
    /// The engines that ran, in comparison order (index 0 is the baseline).
    pub algorithms: Vec<&'static str>,
    /// Patterns in the baseline result (the comparison breadth).
    pub compared: usize,
    /// Violations found — empty when every engine agrees exactly.
    pub report: AuditReport,
}

impl CrossCheck {
    /// Whether every engine produced an identical result.
    pub fn agreed(&self) -> bool {
        self.report.is_clean()
    }
}

/// Diffs one `(left, right)` result pair, appending
/// [`Violation::AlgorithmMismatch`]s to `report`.
fn diff_pair(
    left_name: &'static str,
    left: &MiningResult,
    right_name: &'static str,
    right: &MiningResult,
    catalog: &FeatureCatalog,
    report: &mut AuditReport,
) {
    let mismatch = |report: &mut AuditReport, detail: String| {
        report.push(Violation::AlgorithmMismatch {
            left: left_name,
            right: right_name,
            detail,
        });
    };
    report.checks += 3;
    if left.segment_count != right.segment_count || left.min_count != right.min_count {
        mismatch(
            report,
            format!(
                "run parameters differ: m {} vs {}, min_count {} vs {}",
                left.segment_count, right.segment_count, left.min_count, right.min_count
            ),
        );
        return;
    }
    if left.alphabet != right.alphabet {
        mismatch(
            report,
            format!(
                "alphabets differ: {} vs {} letters",
                left.alphabet.len(),
                right.alphabet.len()
            ),
        );
        return;
    }

    let text = |result: &MiningResult, set: &LetterSet| {
        render(&Pattern::from_letter_set(&result.alphabet, set), catalog)
    };
    let rights: HashMap<&LetterSet, u64> = right
        .frequent
        .iter()
        .map(|fp| (&fp.letters, fp.count))
        .collect();
    let mut details = 0usize;
    let mut emit = |report: &mut AuditReport, detail: String| {
        details += 1;
        if details <= DETAIL_LIMIT {
            mismatch(report, detail);
        }
    };
    for fp in &left.frequent {
        report.checks += 1;
        match rights.get(&fp.letters) {
            None => emit(
                report,
                format!(
                    "`{}` (count {}) only found by {left_name}",
                    text(left, &fp.letters),
                    fp.count
                ),
            ),
            Some(&count) if count != fp.count => emit(
                report,
                format!(
                    "`{}` counted {} by {left_name}, {} by {right_name}",
                    text(left, &fp.letters),
                    fp.count,
                    count
                ),
            ),
            Some(_) => {}
        }
    }
    let lefts: HashMap<&LetterSet, u64> = left
        .frequent
        .iter()
        .map(|fp| (&fp.letters, fp.count))
        .collect();
    for fp in &right.frequent {
        report.checks += 1;
        if !lefts.contains_key(&fp.letters) {
            emit(
                report,
                format!(
                    "`{}` (count {}) only found by {right_name}",
                    text(right, &fp.letters),
                    fp.count
                ),
            );
        }
    }
    if details > DETAIL_LIMIT {
        mismatch(
            report,
            format!("… and {} more differences", details - DETAIL_LIMIT),
        );
    }
}

/// Mines `series` with the hit-set, Apriori, streaming hit-set, and
/// vertical engines and diffs the results pairwise against the hit-set
/// baseline.
///
/// The vertical re-mine reuses one [`EncodedSeries`] cache, so the oracle
/// probes packed instant bitmaps instead of re-merge-walking raw feature
/// slices.
///
/// The miners canonicalize ordering before returning, so equal results
/// compare equal structurally; any difference in membership or counts
/// becomes a [`Violation::AlgorithmMismatch`] naming the engines and the
/// pattern.
pub fn cross_check(
    series: &FeatureSeries,
    period: usize,
    config: &MineConfig,
    catalog: &FeatureCatalog,
) -> crate::error::Result<CrossCheck> {
    let _span = ppm_observe::span("audit.diff");
    let baseline = crate::hitset::mine(series, period, config)?;
    let apriori = crate::apriori::mine(series, period, config)?;
    let streamed = {
        let mut src = MemorySource::new(series);
        crate::streaming::mine_hitset_streaming(&mut src, period, config)?
    };
    let vertical = {
        let encoded = EncodedSeries::encode(series);
        crate::vertical::mine_vertical_encoded(series, &encoded, period, config)?
    };

    let mut report = AuditReport::new();
    diff_pair(
        "hitset",
        &baseline,
        "apriori",
        &apriori,
        catalog,
        &mut report,
    );
    diff_pair(
        "hitset",
        &baseline,
        "streaming-hitset",
        &streamed,
        catalog,
        &mut report,
    );
    diff_pair(
        "hitset",
        &baseline,
        "vertical",
        &vertical,
        catalog,
        &mut report,
    );
    let check = CrossCheck {
        algorithms: vec!["hitset", "apriori", "streaming-hitset", "vertical"],
        compared: baseline.len(),
        report,
    };
    ppm_observe::mark("audit.diff.verdict", || {
        if check.agreed() {
            format!(
                "{} engines agree on {} patterns",
                check.algorithms.len(),
                check.compared
            )
        } else {
            format!("{} mismatches", check.report.violations.len())
        }
    });
    Ok(check)
}

/// [`cross_check`] over a borrowed bitmap view (a columnar file load or an
/// [`EncodedSeries`] cache): mines with the view-backed hit-set, Apriori,
/// and vertical engines and diffs pairwise against the hit-set baseline.
///
/// The streaming engine is absent — it consumes a
/// [`ppm_timeseries::SeriesSource`], which a borrowed view does not
/// provide — so this oracle covers the three engines that accept packed
/// rows directly, without ever materializing a [`FeatureSeries`].
pub fn cross_check_view(
    view: EncodedSeriesView<'_>,
    period: usize,
    config: &MineConfig,
    catalog: &FeatureCatalog,
) -> crate::error::Result<CrossCheck> {
    let _span = ppm_observe::span("audit.diff");
    let baseline = crate::hitset::mine_view(view, period, config)?;
    let apriori = crate::apriori::mine_view(view, period, config)?;
    let vertical = crate::vertical::mine_vertical_view(view, period, config)?;

    let mut report = AuditReport::new();
    diff_pair(
        "hitset",
        &baseline,
        "apriori",
        &apriori,
        catalog,
        &mut report,
    );
    diff_pair(
        "hitset",
        &baseline,
        "vertical",
        &vertical,
        catalog,
        &mut report,
    );
    let check = CrossCheck {
        algorithms: vec!["hitset", "apriori", "vertical"],
        compared: baseline.len(),
        report,
    };
    ppm_observe::mark("audit.diff.verdict", || {
        if check.agreed() {
            format!(
                "{} engines agree on {} patterns",
                check.algorithms.len(),
                check.compared
            )
        } else {
            format!("{} mismatches", check.report.violations.len())
        }
    });
    Ok(check)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppm_timeseries::SeriesBuilder;

    fn sample() -> (FeatureSeries, FeatureCatalog) {
        let mut catalog = FeatureCatalog::new();
        let a = catalog.intern("alpha");
        let b = catalog.intern("beta");
        let mut builder = SeriesBuilder::new();
        for j in 0..20 {
            builder.push_instant([a]);
            builder.push_instant(if j % 4 != 0 { vec![b] } else { vec![] });
            builder.push_instant(if j % 2 == 0 { vec![a, b] } else { vec![] });
        }
        (builder.finish(), catalog)
    }

    #[test]
    fn engines_agree_on_a_real_mine() {
        let (series, catalog) = sample();
        let config = MineConfig::new(0.5).unwrap();
        let check = cross_check(&series, 3, &config, &catalog).unwrap();
        assert!(check.agreed(), "{:?}", check.report.violations);
        assert_eq!(check.algorithms.len(), 4);
        assert!(check.compared > 0);
    }

    #[test]
    fn view_engines_agree_on_a_real_mine() {
        let (series, catalog) = sample();
        let encoded = EncodedSeries::encode(&series);
        let config = MineConfig::new(0.5).unwrap();
        let check = cross_check_view(encoded.view(), 3, &config, &catalog).unwrap();
        assert!(check.agreed(), "{:?}", check.report.violations);
        assert_eq!(check.algorithms.len(), 3);
        let series_check = cross_check(&series, 3, &config, &catalog).unwrap();
        assert_eq!(check.compared, series_check.compared);
    }

    #[test]
    fn diff_pair_flags_membership_and_count_divergence() {
        let (series, catalog) = sample();
        let config = MineConfig::new(0.5).unwrap();
        let left = crate::hitset::mine(&series, 3, &config).unwrap();
        let mut right = left.clone();
        right.frequent[0].count += 2;
        let dropped = right.frequent.pop().unwrap();
        let mut report = AuditReport::new();
        diff_pair("hitset", &left, "tampered", &right, &catalog, &mut report);
        assert!(!report.is_clean());
        let details: Vec<String> = report.violations.iter().map(|v| v.to_string()).collect();
        assert!(details.iter().any(|d| d.contains("counted")), "{details:?}");
        assert!(
            details.iter().any(|d| d.contains("only found by hitset")),
            "{details:?}"
        );
        drop(dropped);
    }

    #[test]
    fn diff_pair_flags_parameter_divergence() {
        let (series, catalog) = sample();
        let config = MineConfig::new(0.5).unwrap();
        let left = crate::hitset::mine(&series, 3, &config).unwrap();
        let mut right = left.clone();
        right.min_count += 1;
        let mut report = AuditReport::new();
        diff_pair("hitset", &left, "tampered", &right, &catalog, &mut report);
        assert!(report
            .violations
            .iter()
            .any(|v| v.to_string().contains("run parameters differ")));
    }
}
