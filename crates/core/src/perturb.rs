//! Perturbation-tolerant mining (paper §6).
//!
//! Real periodic behaviour jitters: the 7:00 coffee sometimes happens at
//! 7:05. Exact offset matching then under-counts. The paper proposes to
//! "slightly enlarge the time slot to be examined" — equivalently, to let
//! each instant absorb the features of its neighbours before mining. This
//! module wires the substrate's slot enlargement into the miners.
//!
//! Semantics shift accordingly: a pattern mined with `half_width = w` reads
//! "feature f occurs within ±w slots of offset i", and confidences are
//! monotonically ≥ the exact-matching confidences (enlargement only adds
//! features). Both facts are tested below.

use ppm_timeseries::{window, FeatureSeries};

use crate::error::Result;
use crate::result::MiningResult;
use crate::scan::MineConfig;
use crate::{mine, Algorithm};

/// Mines `series` at `period` after enlarging every slot by `half_width`
/// neighbours on each side (paper §6's first perturbation remedy).
///
/// `half_width = 0` is exact mining. Large `half_width` (approaching the
/// period) makes everything smear together; callers typically use 1 or 2.
pub fn mine_with_slot_enlargement(
    series: &FeatureSeries,
    period: usize,
    half_width: usize,
    config: &MineConfig,
    algorithm: Algorithm,
) -> Result<MiningResult> {
    if half_width == 0 {
        return mine(series, period, config, algorithm);
    }
    let enlarged = window::enlarge_slots(series, half_width);
    mine(&enlarged, period, config, algorithm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppm_timeseries::{FeatureId, SeriesBuilder};

    use crate::pattern::Pattern;

    fn fid(i: u32) -> FeatureId {
        FeatureId::from_raw(i)
    }

    /// An event that fires at offset 3 ± 1 of a period-8 cycle, with the
    /// jitter alternating deterministically.
    fn jittered(n_periods: usize) -> FeatureSeries {
        let mut b = SeriesBuilder::new();
        for j in 0..n_periods {
            let fire_at = match j % 3 {
                0 => 2,
                1 => 3,
                _ => 4,
            };
            for o in 0..8 {
                if o == fire_at {
                    b.push_instant([fid(0)]);
                } else {
                    b.push_instant([]);
                }
            }
        }
        b.finish()
    }

    #[test]
    fn exact_mining_misses_the_jittered_event() {
        let s = jittered(30);
        let config = MineConfig::new(0.9).unwrap();
        let exact = mine(&s, 8, &config, Algorithm::HitSet).unwrap();
        // Each of offsets 2, 3, 4 sees the event only 1/3 of the time.
        assert!(exact.is_empty());
    }

    #[test]
    fn enlargement_recovers_the_event() {
        let s = jittered(30);
        let config = MineConfig::new(0.9).unwrap();
        let tolerant = mine_with_slot_enlargement(&s, 8, 1, &config, Algorithm::HitSet).unwrap();
        // Offset 3 ± 1 always contains the event.
        let mut cat = ppm_timeseries::FeatureCatalog::new();
        cat.intern("f0");
        let pat = Pattern::parse("* * * f0 * * * *", &mut cat).unwrap();
        assert_eq!(tolerant.count_of(&pat), Some(30));
    }

    #[test]
    fn zero_width_equals_exact() {
        let s = jittered(12);
        let config = MineConfig::new(0.3).unwrap();
        let a = mine(&s, 8, &config, Algorithm::HitSet).unwrap();
        let b = mine_with_slot_enlargement(&s, 8, 0, &config, Algorithm::HitSet).unwrap();
        assert_eq!(a.frequent, b.frequent);
    }

    #[test]
    fn confidence_is_monotone_in_width() {
        let s = jittered(30);
        let config = MineConfig::new(0.1).unwrap();
        let exact = mine(&s, 8, &config, Algorithm::HitSet).unwrap();
        let wide = mine_with_slot_enlargement(&s, 8, 1, &config, Algorithm::HitSet).unwrap();
        // Every pattern frequent under exact matching stays frequent (with
        // count no smaller) under enlargement.
        for (pattern, count, _) in exact.patterns() {
            let wide_count = wide.count_of(&pattern).unwrap_or(0);
            assert!(wide_count >= count, "{pattern:?}: {wide_count} < {count}");
        }
    }

    #[test]
    fn works_with_apriori_too() {
        let s = jittered(15);
        let config = MineConfig::new(0.9).unwrap();
        let h = mine_with_slot_enlargement(&s, 8, 1, &config, Algorithm::HitSet).unwrap();
        let a = mine_with_slot_enlargement(&s, 8, 1, &config, Algorithm::Apriori).unwrap();
        assert_eq!(h.frequent, a.frequent);
    }
}
