//! The single-period Apriori miner (Algorithm 3.1) and its candidate
//! generation machinery.
//!
//! Property 3.1 ("Apriori on periodicity"): every subpattern of a frequent
//! pattern of period `p` is itself frequent at period `p`. Algorithm 3.1
//! exploits it level-wise, exactly like association-rule Apriori [AS94]:
//! frequent `k`-letter patterns filter the `(k+1)`-letter candidates, and
//! each level is counted with one full scan over the series. The paper's
//! §3.1.2 observation — that partial-periodicity candidate sets shrink
//! *slowly* with `k`, making all these scans expensive — is what the
//! max-subpattern hit-set method (our [`crate::hitset`]) fixes.

mod candidate;
mod single_period;

pub use candidate::{for_each_combination, join_candidates};
pub use single_period::{mine, mine_view};

pub(crate) use candidate::binomial;
