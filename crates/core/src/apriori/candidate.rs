//! Level-wise candidate generation: the classic prefix join with full
//! subset pruning, over sorted letter-index vectors.

use std::collections::HashSet;

/// Generates the `(k+1)`-letter candidates from the frequent `k`-letter
/// patterns (each a strictly ascending letter-index vector).
///
/// `frequent` must be sorted lexicographically (miners keep levels sorted).
/// Two patterns sharing their first `k−1` letters join into a candidate;
/// the candidate survives only if *all* of its `k`-subsets are frequent
/// (Property 3.1).
pub fn join_candidates(frequent: &[Vec<u32>]) -> Vec<Vec<u32>> {
    if frequent.is_empty() {
        return Vec::new();
    }
    let k = frequent[0].len();
    debug_assert!(frequent.iter().all(|p| p.len() == k));
    debug_assert!(
        frequent.windows(2).all(|w| w[0] < w[1]),
        "frequent level must be sorted"
    );

    let lookup: HashSet<&[u32]> = frequent.iter().map(Vec::as_slice).collect();
    let mut out = Vec::new();
    let mut scratch = Vec::with_capacity(k);

    for i in 0..frequent.len() {
        for j in i + 1..frequent.len() {
            let (a, b) = (&frequent[i], &frequent[j]);
            if a[..k - 1] != b[..k - 1] {
                break; // sorted order: no further j shares the prefix
            }
            // a < b lexicographically and equal prefixes => a[k-1] < b[k-1].
            let mut cand = a.clone();
            cand.push(b[k - 1]);
            // Prune: every k-subset must be frequent. The two subsets
            // missing cand[k] and cand[k-1] are a and b themselves.
            let ok = (0..k - 1).all(|drop| {
                scratch.clear();
                scratch.extend(
                    cand.iter()
                        .enumerate()
                        .filter(|&(p, _)| p != drop)
                        .map(|(_, &l)| l),
                );
                lookup.contains(scratch.as_slice())
            });
            if ok {
                out.push(cand);
            }
        }
    }
    out
}

/// Calls `visit` with every `k`-combination of `items`, in lexicographic
/// order. Used by the adaptive candidate counter to enumerate the
/// `k`-subsets of a segment's projected letter set.
pub fn for_each_combination<T: Copy>(items: &[T], k: usize, mut visit: impl FnMut(&[T])) {
    if k == 0 || k > items.len() {
        return;
    }
    let mut idx: Vec<usize> = (0..k).collect();
    let mut buf: Vec<T> = idx.iter().map(|&i| items[i]).collect();
    let n = items.len();
    loop {
        visit(&buf);
        // Advance the combination (standard odometer).
        let mut pos = k;
        loop {
            if pos == 0 {
                return;
            }
            pos -= 1;
            if idx[pos] != pos + n - k {
                break;
            }
            if pos == 0 {
                return;
            }
        }
        idx[pos] += 1;
        for p in pos + 1..k {
            idx[p] = idx[p - 1] + 1;
        }
        for p in pos..k {
            buf[p] = items[idx[p]];
        }
    }
}

/// Number of `k`-combinations of `n` items, saturating at `u64::MAX`.
pub(crate) fn binomial(n: usize, k: usize) -> u64 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut acc: u128 = 1;
    for i in 0..k {
        acc = acc * (n - i) as u128 / (i + 1) as u128;
        if acc > u64::MAX as u128 {
            return u64::MAX;
        }
    }
    acc as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_level1_produces_all_pairs() {
        let l1 = vec![vec![0], vec![1], vec![2]];
        let got = join_candidates(&l1);
        assert_eq!(got, vec![vec![0, 1], vec![0, 2], vec![1, 2]]);
    }

    #[test]
    fn join_prunes_missing_subsets() {
        // {0,1}, {0,2}, {1,2} all frequent -> {0,1,2} survives.
        let l2 = vec![vec![0, 1], vec![0, 2], vec![1, 2]];
        assert_eq!(join_candidates(&l2), vec![vec![0, 1, 2]]);
        // Without {1,2} the candidate must be pruned.
        let l2 = vec![vec![0, 1], vec![0, 2]];
        assert!(join_candidates(&l2).is_empty());
    }

    #[test]
    fn join_respects_prefix_grouping() {
        // {0,1} and {2,3} share no prefix: no candidate.
        let l2 = vec![vec![0, 1], vec![2, 3]];
        assert!(join_candidates(&l2).is_empty());
    }

    #[test]
    fn join_empty_input() {
        assert!(join_candidates(&[]).is_empty());
    }

    #[test]
    fn join_output_is_sorted_and_unique() {
        let l1: Vec<Vec<u32>> = (0..6).map(|i| vec![i]).collect();
        let pairs = join_candidates(&l1);
        assert!(pairs.windows(2).all(|w| w[0] < w[1]));
        let triples = join_candidates(&pairs);
        assert!(triples.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(triples.len(), binomial(6, 3) as usize);
    }

    #[test]
    fn combinations_enumerate_lexicographically() {
        let mut seen = Vec::new();
        for_each_combination(&[1, 2, 3, 4], 2, |c| seen.push(c.to_vec()));
        assert_eq!(
            seen,
            vec![
                vec![1, 2],
                vec![1, 3],
                vec![1, 4],
                vec![2, 3],
                vec![2, 4],
                vec![3, 4]
            ]
        );
    }

    #[test]
    fn combinations_edge_cases() {
        let mut count = 0;
        for_each_combination(&[1, 2, 3], 0, |_| count += 1);
        assert_eq!(count, 0);
        for_each_combination(&[1, 2, 3], 4, |_| count += 1);
        assert_eq!(count, 0);
        for_each_combination(&[7], 1, |c| {
            assert_eq!(c, &[7]);
            count += 1;
        });
        assert_eq!(count, 1);
        let mut full = Vec::new();
        for_each_combination(&[1, 2, 3], 3, |c| full.push(c.to_vec()));
        assert_eq!(full, vec![vec![1, 2, 3]]);
    }

    #[test]
    fn combinations_count_matches_binomial() {
        for n in 0..8usize {
            let items: Vec<usize> = (0..n).collect();
            for k in 1..=n {
                let mut count = 0u64;
                for_each_combination(&items, k, |_| count += 1);
                assert_eq!(count, binomial(n, k), "C({n},{k})");
            }
        }
    }

    #[test]
    fn binomial_values() {
        assert_eq!(binomial(5, 2), 10);
        assert_eq!(binomial(10, 0), 1);
        assert_eq!(binomial(3, 5), 0);
        assert_eq!(binomial(64, 32), 1_832_624_140_942_590_534);
        assert_eq!(binomial(200, 100), u64::MAX); // saturates
    }
}
