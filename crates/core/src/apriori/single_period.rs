//! Algorithm 3.1: single-period Apriori mining.

use ppm_timeseries::{EncodedSeriesView, FeatureSeries};

use crate::apriori::candidate::{binomial, for_each_combination, join_candidates};
use crate::error::Result;
use crate::letters::LetterSet;
use crate::result::{FrequentPattern, MiningResult};
use crate::rows::Rows;
use crate::scan::{scan_frequent_letters_rows, MineConfig, Scan1};
use crate::stats::MiningStats;

/// Mines all frequent partial periodic patterns of `period` in `series`
/// with the level-wise Apriori method (paper Algorithm 3.1).
///
/// Step 1 finds the frequent 1-patterns with one scan; step 2 runs one
/// additional full scan of the series per level, terminating when a level
/// yields no candidates (so the total is at most `period` scans, typically
/// `max_pattern_length + 1`).
pub fn mine(series: &FeatureSeries, period: usize, config: &MineConfig) -> Result<MiningResult> {
    mine_rows(Rows::Series(series), period, config)
}

/// [`mine`] over a borrowed bitmap view (an
/// [`EncodedSeries`](ppm_timeseries::EncodedSeries) cache or a columnar
/// file load): every per-level scan probes the packed rows directly.
pub fn mine_view(
    view: EncodedSeriesView<'_>,
    period: usize,
    config: &MineConfig,
) -> Result<MiningResult> {
    mine_rows(Rows::View(view), period, config)
}

/// Algorithm 3.1 over either row substrate.
fn mine_rows(rows: Rows<'_>, period: usize, config: &MineConfig) -> Result<MiningResult> {
    let _mine_span = ppm_observe::span("apriori.mine");
    let scan1 = {
        let _span = ppm_observe::span("apriori.scan1");
        scan_frequent_letters_rows(rows, period, config)?
    };
    let mut stats = MiningStats {
        series_scans: 1,
        max_level: 1,
        ..Default::default()
    };

    let mut frequent: Vec<FrequentPattern> = Vec::new();
    let n_letters = scan1.alphabet.len();
    for (idx, &count) in scan1.letter_counts.iter().enumerate() {
        frequent.push(FrequentPattern {
            letters: LetterSet::from_indices(n_letters, [idx]),
            count,
        });
    }

    // Level-wise expansion: `level` holds the frequent k-letter patterns as
    // sorted index vectors (already lexicographically ordered because the
    // join emits candidates in order and filtering preserves it).
    let mut level: Vec<Vec<u32>> = (0..n_letters as u32).map(|i| vec![i]).collect();
    let mut k = 1;
    while !level.is_empty() {
        let candidates = join_candidates(&level);
        stats.candidates_generated += candidates.len() as u64;
        if candidates.is_empty() {
            break;
        }
        k += 1;
        stats.max_level = k;

        // One span per level, with candidate and survivor counts attached
        // so the paper's per-level candidate shrinkage is visible.
        let _level_span = ppm_observe::span("apriori.level");
        ppm_observe::counter("apriori.candidates", candidates.len() as u64);
        let counts = count_candidates(rows, &scan1, &candidates, &mut stats);
        stats.series_scans += 1;

        let mut next_level = Vec::new();
        for (cand, count) in candidates.into_iter().zip(counts) {
            if count >= scan1.min_count {
                frequent.push(FrequentPattern {
                    letters: LetterSet::from_indices(n_letters, cand.iter().map(|&l| l as usize)),
                    count,
                });
                next_level.push(cand);
            }
        }
        ppm_observe::counter("apriori.frequent", next_level.len() as u64);
        level = next_level;
    }

    let mut result = MiningResult {
        period,
        segment_count: scan1.segment_count,
        min_confidence: config.min_confidence(),
        min_count: scan1.min_count,
        alphabet: scan1.alphabet,
        frequent,
        stats,
    };
    result.sort();
    Ok(result)
}

/// Counts each candidate's matching segments with one scan over the series.
///
/// Per segment the counter picks the cheaper of two classic strategies:
/// enumerate the segment's own `k`-letter subsets and probe a candidate
/// hash map (cheap when the segment projects onto few frequent letters), or
/// subset-test every candidate against the segment projection (cheap when
/// there are few candidates). This mirrors the role of the hash-tree in
/// association-rule Apriori.
fn count_candidates(
    rows: Rows<'_>,
    scan1: &Scan1,
    candidates: &[Vec<u32>],
    stats: &mut MiningStats,
) -> Vec<u64> {
    use std::collections::HashMap;

    let k = candidates[0].len();
    let period = scan1.alphabet.period();
    let m = scan1.segment_count;
    let mut counts = vec![0u64; candidates.len()];

    let by_pattern: HashMap<&[u32], usize> = candidates
        .iter()
        .enumerate()
        .map(|(i, c)| (c.as_slice(), i))
        .collect();
    let candidate_sets: Vec<LetterSet> = candidates
        .iter()
        .map(|c| LetterSet::from_indices(scan1.alphabet.len(), c.iter().map(|&l| l as usize)))
        .collect();

    let mut projection = scan1.alphabet.empty_set();
    let mut proj_letters: Vec<u32> = Vec::with_capacity(scan1.alphabet.len());
    for j in 0..m {
        // Project the segment onto the frequent-letter alphabet: this pass
        // over the raw instants *is* the per-level series scan.
        projection.clear();
        for offset in 0..period {
            rows.project(
                &scan1.alphabet,
                offset,
                j * period + offset,
                &mut projection,
            );
        }
        let present = projection.len();
        if present < k {
            continue;
        }

        // Strategy choice: C(present, k) subset enumerations vs
        // |candidates| subset tests.
        let enumerate_cost = binomial(present, k);
        if enumerate_cost <= candidates.len() as u64 {
            proj_letters.clear();
            proj_letters.extend(projection.iter().map(|l| l as u32));
            for_each_combination(&proj_letters, k, |combo| {
                stats.subset_tests += 1;
                if let Some(&i) = by_pattern.get(combo) {
                    counts[i] += 1;
                }
            });
        } else {
            for (i, cset) in candidate_sets.iter().enumerate() {
                stats.subset_tests += 1;
                if cset.is_subset(&projection) {
                    counts[i] += 1;
                }
            }
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppm_timeseries::{FeatureCatalog, FeatureId, SeriesBuilder};

    use crate::pattern::Pattern;

    fn fid(i: u32) -> FeatureId {
        FeatureId::from_raw(i)
    }

    /// The paper's §2 example series "a{b,c}b aeb ace d" with period 3.
    fn example_series(cat: &mut FeatureCatalog) -> FeatureSeries {
        let a = cat.intern("a");
        let b = cat.intern("b");
        let c = cat.intern("c");
        let e = cat.intern("e");
        let d = cat.intern("d");
        let mut builder = SeriesBuilder::new();
        builder.push_instant([a]);
        builder.push_instant([b, c]);
        builder.push_instant([b]);
        builder.push_instant([a]);
        builder.push_instant([e]);
        builder.push_instant([b]);
        builder.push_instant([a]);
        builder.push_instant([c]);
        builder.push_instant([e]);
        builder.push_instant([d]);
        builder.finish()
    }

    #[test]
    fn mines_paper_example() {
        let mut cat = FeatureCatalog::new();
        let series = example_series(&mut cat);
        // m = 3; with min_conf = 2/3 the threshold count is 2.
        let config = MineConfig::new(0.6).unwrap();
        let result = mine(&series, 3, &config).unwrap();
        assert_eq!(result.segment_count, 3);
        assert_eq!(result.min_count, 2);

        // a** (count 3) and a*b (count 2) must be frequent; *c* only
        // appears twice at offset 1 — (1,c) counts segments 0 and 2 -> 2.
        let a_star_star = Pattern::parse("a * *", &mut cat).unwrap();
        assert_eq!(result.count_of(&a_star_star), Some(3));
        let a_star_b = Pattern::parse("a * b", &mut cat).unwrap();
        assert_eq!(result.count_of(&a_star_b), Some(2));
        let star_c_star = Pattern::parse("* c *", &mut cat).unwrap();
        assert_eq!(result.count_of(&star_c_star), Some(2));
        // a c * holds in segments 0? offset1 of segment 0 is {b,c} -> yes;
        // segment 2 offset 1 is {c} -> yes. Count 2, frequent.
        let a_c_star = Pattern::parse("a c *", &mut cat).unwrap();
        assert_eq!(result.count_of(&a_c_star), Some(2));
        // *eb is not frequent (count 1): e at offset 1 occurs once.
        let star_e_b = Pattern::parse("* e b", &mut cat).unwrap();
        assert_eq!(result.count_of(&star_e_b), None);
    }

    #[test]
    fn perfect_pattern_at_full_confidence() {
        let mut b = SeriesBuilder::new();
        for _ in 0..4 {
            b.push_instant([fid(0)]);
            b.push_instant([fid(1)]);
        }
        let s = b.finish();
        let result = mine(&s, 2, &MineConfig::new(1.0).unwrap()).unwrap();
        // f0 f1 (both letters), plus the two singletons.
        assert_eq!(result.len(), 3);
        assert_eq!(result.max_letter_count(), 2);
        let top = result.with_letter_count(2).next().unwrap();
        assert_eq!(top.count, 4);
    }

    #[test]
    fn empty_result_when_nothing_repeats() {
        let mut b = SeriesBuilder::new();
        for t in 0..12u32 {
            b.push_instant([fid(t)]);
        }
        let s = b.finish();
        let result = mine(&s, 3, &MineConfig::new(0.9).unwrap()).unwrap();
        assert!(result.is_empty());
        assert_eq!(result.stats.series_scans, 1); // no level-2 candidates
    }

    #[test]
    fn scan_count_is_levels_plus_one() {
        // Build a series whose maximal frequent pattern has 3 letters:
        // f0 f1 f2 every period, plus noise to keep the alphabet at 3.
        let mut b = SeriesBuilder::new();
        for _ in 0..5 {
            b.push_instant([fid(0)]);
            b.push_instant([fid(1)]);
            b.push_instant([fid(2)]);
        }
        let s = b.finish();
        let result = mine(&s, 3, &MineConfig::new(0.8).unwrap()).unwrap();
        assert_eq!(result.max_letter_count(), 3);
        // Scan 1 + level-2 scan + level-3 scan = 3; the empty level-4
        // candidate set terminates without a scan.
        assert_eq!(result.stats.series_scans, 3);
        assert_eq!(result.stats.max_level, 3);
    }

    #[test]
    fn counts_are_exact_versus_naive_matching() {
        // Randomized-ish small series; compare every reported count with a
        // brute-force segment match.
        let mut b = SeriesBuilder::new();
        let feats = [0u32, 1, 2, 3];
        let mut x: u64 = 42;
        for _ in 0..60 {
            let mut inst = Vec::new();
            for &f in &feats {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                if (x >> 33).is_multiple_of(3) {
                    inst.push(fid(f));
                }
            }
            b.push_instant(inst);
        }
        let s = b.finish();
        let config = MineConfig::new(0.25).unwrap();
        let result = mine(&s, 5, &config).unwrap();
        let segs = s.segments(5).unwrap();
        for (pattern, count, _conf) in result.patterns() {
            let brute = segs
                .iter()
                .filter(|seg| pattern.matches_segment(seg))
                .count() as u64;
            assert_eq!(count, brute, "pattern miscounted");
        }
        assert!(!result.is_empty());
    }

    #[test]
    fn view_mine_equals_series_mine() {
        use ppm_timeseries::EncodedSeries;
        let mut b = SeriesBuilder::new();
        let mut x: u64 = 9;
        for _ in 0..240 {
            let mut inst = Vec::new();
            for f in 0..4u32 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                if (x >> 33).is_multiple_of(2) {
                    inst.push(fid(f));
                }
            }
            b.push_instant(inst);
        }
        let s = b.finish();
        let encoded = EncodedSeries::encode(&s);
        let config = MineConfig::new(0.25).unwrap();
        for p in [4, 6] {
            let plain = mine(&s, p, &config).unwrap();
            let viewed = mine_view(encoded.view(), p, &config).unwrap();
            assert_eq!(plain.frequent, viewed.frequent, "period {p}");
            assert_eq!(plain.stats, viewed.stats, "period {p}");
        }
    }
}
