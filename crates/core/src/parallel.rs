//! Parallel max-subpattern hit-set (and vertical) mining.
//!
//! Both scans of Algorithm 3.2 are embarrassingly parallel over period
//! segments: scan 1's per-letter counts are a sum over segments, and scan
//! 2's hit multiset is a disjoint union. [`mine_parallel`] partitions the
//! `m` segments across threads, has each thread count letters / build its
//! own max-subpattern tree, then merges (counts add;
//! [`MaxSubpatternTree::merge_from`] folds trees). Derivation is unchanged.
//! Scan 2 probes a chunk-encoded [`EncodedSeries`] cache (built by the
//! same workers) instead of merge-walking raw feature slices.
//!
//! [`mine_parallel_vertical`] runs the same partitioning for the vertical
//! engine: each worker fills the column bits of its own segment block into
//! a per-letter bitmap index, and the partial indexes OR together (the
//! blocks are disjoint column ranges, so the merge is exact).
//!
//! Results are bit-for-bit identical to the sequential miners — asserted
//! by the tests — because every reduction here is a commutative sum or a
//! disjoint bitwise OR.

use std::any::Any;

use ppm_timeseries::{EncodedSeries, FeatureSeries};

use crate::error::{Error, Result};
use crate::guard::ResourceGuard;
use crate::hitset::derive::{derive_frequent, CountStrategy};
use crate::hitset::MaxSubpatternTree;
use crate::letters::LetterSet;
use crate::result::{FrequentPattern, MiningResult};
use crate::rows::Rows;
use crate::scan::{scan1_from_counts, CountTable, MineConfig, Scan1};
use crate::stats::MiningStats;
use crate::vertical::{derive_vertical, VerticalIndex};

/// Converts a worker panic payload into the typed [`Error::WorkerPanic`],
/// so a crashing worker cannot take down the caller. Panic payloads are
/// `&str` or `String` in practice (that is what `panic!` produces); any
/// other payload gets a placeholder.
pub(crate) fn worker_panic(payload: Box<dyn Any + Send>) -> Error {
    let detail = if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    };
    Error::WorkerPanic { detail }
}

/// [`crate::hitset::mine`] with both scans partitioned across `threads`
/// worker threads (clamped to ≥ 1). `threads == 1` falls back to the
/// sequential code path.
///
/// A panicking worker is isolated and surfaced as [`Error::WorkerPanic`];
/// the [`MineConfig`] resource guards are honoured at the merge points
/// after each scan.
pub fn mine_parallel(
    series: &FeatureSeries,
    period: usize,
    config: &MineConfig,
    threads: usize,
) -> Result<MiningResult> {
    let threads = threads.max(1);
    if threads == 1 {
        return crate::hitset::mine(series, period, config);
    }
    if period == 0 || period > series.len() {
        return Err(Error::InvalidPeriod {
            period,
            series_len: series.len(),
        });
    }
    let _mine_span = ppm_observe::span("parallel.mine");
    let guard = ResourceGuard::new(config);
    let m = series.len() / period;
    let min_count = config.min_count(m);
    ppm_observe::gauge("parallel.threads", threads as u64);
    ppm_observe::gauge("hitset.segments_total", m as u64);

    // Segment ranges per thread (consecutive blocks).
    let per_thread = m.div_ceil(threads);
    let ranges: Vec<(usize, usize)> = (0..threads)
        .map(|i| (i * per_thread, ((i + 1) * per_thread).min(m)))
        .filter(|(lo, hi)| lo < hi)
        .collect();

    // ---- Scan 1, partitioned: each worker counts its segments.
    let scan1 = parallel_scan1(series, period, m, min_count, &ranges)?;
    let mut stats = MiningStats {
        series_scans: 2,
        max_level: 1,
        ..Default::default()
    };
    guard.check_deadline(&MiningStats {
        series_scans: 1,
        max_level: 1,
        ..Default::default()
    })?;

    // ---- Scan 2, partitioned: the workers first chunk-encode the series
    // into per-instant bitmaps, then build per-thread trees (probing the
    // encoding instead of merge-walking raw slices), merged afterwards.
    let scan2_span = ppm_observe::span("parallel.scan2");
    let encoded = encode_parallel(series, period, m, &ranges)?;
    let obs = ppm_observe::current();
    let scan1_ref = &scan1;
    let encoded_ref = &encoded;
    let trees: Vec<MaxSubpatternTree> = std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .iter()
            .map(|&(lo, hi)| {
                let obs = obs.clone();
                scope.spawn(move || {
                    let _obs = ppm_observe::attach(obs);
                    let _span = ppm_observe::span("parallel.worker.scan2");
                    let mut tree = MaxSubpatternTree::new(scan1_ref.alphabet.full_set());
                    let mut hit = scan1_ref.alphabet.empty_set();
                    for j in lo..hi {
                        hit.clear();
                        for offset in 0..period {
                            scan1_ref.alphabet.project_encoded(
                                offset,
                                encoded_ref.instant_words(j * period + offset),
                                &mut hit,
                            );
                        }
                        if hit.len() >= 2 {
                            tree.insert(&hit);
                        }
                    }
                    ppm_observe::counter("hitset.segments", (hi - lo) as u64);
                    tree
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().map_err(worker_panic))
            .collect::<Result<Vec<_>>>()
    })?;
    let mut tree = MaxSubpatternTree::new(scan1.alphabet.full_set());
    for partial in &trees {
        tree.merge_from(partial);
        if guard.tree_over_budget(tree.node_count()) {
            stats.tree_nodes = tree.node_count();
            stats.distinct_hits = tree.distinct_hits();
            stats.hit_insertions = tree.total_hits();
            return Err(guard.tree_error(tree.node_count(), &stats));
        }
    }
    drop(scan2_span);
    stats.tree_nodes = tree.node_count();
    stats.distinct_hits = tree.distinct_hits();
    stats.hit_insertions = tree.total_hits();
    ppm_observe::gauge("tree.nodes", stats.tree_nodes as u64);
    ppm_observe::gauge("tree.distinct_hits", stats.distinct_hits as u64);
    guard.check_deadline(&stats)?;

    // ---- Derivation (sequential; it is in-memory and cheap relative to
    // the scans on realistic data).
    let _derive_span = ppm_observe::span("parallel.derive");
    let n_letters = scan1.alphabet.len();
    let mut frequent: Vec<FrequentPattern> = scan1
        .letter_counts
        .iter()
        .enumerate()
        .map(|(idx, &count)| FrequentPattern {
            letters: LetterSet::from_indices(n_letters, [idx]),
            count,
        })
        .collect();
    derive_frequent(
        &tree,
        &scan1,
        CountStrategy::default(),
        &mut frequent,
        &mut stats,
    );

    let mut result = MiningResult {
        period,
        segment_count: m,
        min_confidence: config.min_confidence(),
        min_count,
        alphabet: scan1.alphabet,
        frequent,
        stats,
    };
    result.sort();
    Ok(result)
}

/// [`crate::vertical::mine_vertical`] with both scans partitioned across
/// `threads` worker threads (clamped to ≥ 1; `threads == 1` falls back to
/// the sequential vertical miner).
///
/// Scan 2 gives each worker the full-geometry bitmap index but only its
/// own block of segment columns to fill; the partial indexes then merge by
/// bitwise OR, which is exact because the column ranges are disjoint.
pub fn mine_parallel_vertical(
    series: &FeatureSeries,
    period: usize,
    config: &MineConfig,
    threads: usize,
) -> Result<MiningResult> {
    let threads = threads.max(1);
    if threads == 1 {
        return crate::vertical::mine_vertical(series, period, config);
    }
    if period == 0 || period > series.len() {
        return Err(Error::InvalidPeriod {
            period,
            series_len: series.len(),
        });
    }
    let _mine_span = ppm_observe::span("parallel.mine");
    let guard = ResourceGuard::new(config);
    let m = series.len() / period;
    let min_count = config.min_count(m);
    ppm_observe::gauge("parallel.threads", threads as u64);
    ppm_observe::gauge("vertical.segments_total", m as u64);

    let per_thread = m.div_ceil(threads);
    let ranges: Vec<(usize, usize)> = (0..threads)
        .map(|i| (i * per_thread, ((i + 1) * per_thread).min(m)))
        .filter(|(lo, hi)| lo < hi)
        .collect();

    // ---- Scan 1, partitioned (same reduction as the tree miner).
    let scan1 = parallel_scan1(series, period, m, min_count, &ranges)?;
    ppm_observe::gauge("vertical.f1_letters", scan1.alphabet.len() as u64);
    let mut stats = MiningStats {
        series_scans: 2,
        max_level: 1,
        ..Default::default()
    };
    guard.check_deadline(&MiningStats {
        series_scans: 1,
        max_level: 1,
        ..Default::default()
    })?;

    // ---- Scan 2, partitioned: chunk-encode, then per-worker bitmap fills
    // OR-merged into one index.
    let scan2_span = ppm_observe::span("parallel.scan2");
    let encoded = encode_parallel(series, period, m, &ranges)?;
    let obs = ppm_observe::current();
    let scan1_ref = &scan1;
    let encoded_ref = &encoded;
    let parts: Vec<VerticalIndex> = std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .iter()
            .map(|&(lo, hi)| {
                let obs = obs.clone();
                scope.spawn(move || {
                    let _obs = ppm_observe::attach(obs);
                    let _span = ppm_observe::span("parallel.worker.scan2");
                    let mut part = VerticalIndex::with_columns(scan1_ref.alphabet.len(), m);
                    part.fill_segments(Rows::View(encoded_ref.view()), &scan1_ref.alphabet, lo..hi);
                    ppm_observe::counter("vertical.segments", (hi - lo) as u64);
                    part
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().map_err(worker_panic))
            .collect::<Result<Vec<_>>>()
    })?;
    let mut index = VerticalIndex::with_columns(scan1.alphabet.len(), m);
    for part in &parts {
        index.or_merge(part);
    }
    drop(scan2_span);
    ppm_observe::gauge("vertical.bitmap_bytes", index.bitmap_bytes() as u64);
    guard.check_deadline(&stats)?;

    // ---- Derivation (sequential: AND + popcount per candidate).
    let frequent = {
        let _span = ppm_observe::span("parallel.derive");
        derive_vertical(&index, &scan1, &mut stats)
    };

    let mut result = MiningResult {
        period,
        segment_count: m,
        min_confidence: config.min_confidence(),
        min_count,
        alphabet: scan1.alphabet,
        frequent,
        stats,
    };
    result.sort();
    Ok(result)
}

/// Scan 1 partitioned across workers: each counts its segment block into a
/// [`CountTable`] partial. Every partial is laid out for the same explicit
/// `(period, width)` key space, so the merge is a plain elementwise sum.
fn parallel_scan1(
    series: &FeatureSeries,
    period: usize,
    m: usize,
    min_count: u64,
    ranges: &[(usize, usize)],
) -> Result<Scan1> {
    let _span = ppm_observe::span("parallel.scan1");
    let width = CountTable::width_of(series);
    let obs = ppm_observe::current();
    let partials: Vec<CountTable> = std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .iter()
            .map(|&(lo, hi)| {
                let obs = obs.clone();
                scope.spawn(move || {
                    let _obs = ppm_observe::attach(obs);
                    let _span = ppm_observe::span("parallel.worker.scan1");
                    let mut counts = CountTable::with_width(period, width);
                    for t in lo * period..hi * period {
                        let offset = (t % period) as u32;
                        for &f in series.instant(t) {
                            counts.add(offset, f);
                        }
                    }
                    counts
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().map_err(worker_panic))
            .collect::<Result<Vec<_>>>()
    })?;
    let mut counts = CountTable::with_width(period, width);
    for partial in partials {
        counts.absorb(partial);
    }
    Ok(scan1_from_counts(&counts, period, m, min_count))
}

/// Encodes the mined prefix (`m·p` instants) into per-instant bitmaps, one
/// chunk per worker block. The blocks are consecutive, so the chunks
/// concatenate into the whole cache.
fn encode_parallel(
    series: &FeatureSeries,
    period: usize,
    m: usize,
    ranges: &[(usize, usize)],
) -> Result<EncodedSeries> {
    let _span = ppm_observe::span("parallel.encode");
    let width = EncodedSeries::width_for(series);
    let obs = ppm_observe::current();
    let chunks: Vec<Vec<u64>> = std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .iter()
            .map(|&(lo, hi)| {
                let obs = obs.clone();
                scope.spawn(move || {
                    let _obs = ppm_observe::attach(obs);
                    EncodedSeries::encode_range(series, lo * period, hi * period, width)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().map_err(worker_panic))
            .collect::<Result<Vec<_>>>()
    })?;
    Ok(EncodedSeries::from_chunks(width, m * period, chunks))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppm_timeseries::{FeatureId, SeriesBuilder};

    fn fid(i: u32) -> FeatureId {
        FeatureId::from_raw(i)
    }

    fn noisy_series(n: usize) -> FeatureSeries {
        let mut b = SeriesBuilder::new();
        let mut x: u64 = 11;
        for t in 0..n {
            let mut inst = Vec::new();
            if t % 6 == 2 {
                inst.push(fid(0));
            }
            if t % 6 == 4 {
                inst.push(fid(1));
            }
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            if (x >> 62) == 0 {
                inst.push(fid(2 + ((x >> 40) % 4) as u32));
            }
            b.push_instant(inst);
        }
        b.finish()
    }

    #[test]
    fn parallel_equals_sequential() {
        let s = noisy_series(1200);
        let config = MineConfig::new(0.4).unwrap();
        let sequential = crate::hitset::mine(&s, 6, &config).unwrap();
        for threads in [2, 3, 4, 8] {
            let parallel = mine_parallel(&s, 6, &config, threads).unwrap();
            assert_eq!(parallel.frequent, sequential.frequent, "threads={threads}");
            assert_eq!(parallel.segment_count, sequential.segment_count);
            assert_eq!(
                parallel.stats.hit_insertions,
                sequential.stats.hit_insertions
            );
            assert_eq!(parallel.stats.distinct_hits, sequential.stats.distinct_hits);
        }
    }

    #[test]
    fn one_thread_delegates_to_sequential() {
        let s = noisy_series(120);
        let config = MineConfig::new(0.5).unwrap();
        let a = mine_parallel(&s, 6, &config, 1).unwrap();
        let b = crate::hitset::mine(&s, 6, &config).unwrap();
        assert_eq!(a.frequent, b.frequent);
    }

    #[test]
    fn more_threads_than_segments() {
        let s = noisy_series(18); // 3 segments of period 6
        let config = MineConfig::new(0.5).unwrap();
        let a = mine_parallel(&s, 6, &config, 16).unwrap();
        let b = crate::hitset::mine(&s, 6, &config).unwrap();
        assert_eq!(a.frequent, b.frequent);
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let s = noisy_series(60);
        let config = MineConfig::new(0.5).unwrap();
        assert!(mine_parallel(&s, 6, &config, 0).is_ok());
    }

    #[test]
    fn parallel_vertical_equals_sequential_vertical_and_hitset() {
        let s = noisy_series(1200);
        let config = MineConfig::new(0.4).unwrap();
        let sequential = crate::vertical::mine_vertical(&s, 6, &config).unwrap();
        let hitset = crate::hitset::mine(&s, 6, &config).unwrap();
        assert_eq!(sequential.frequent, hitset.frequent);
        for threads in [2, 3, 4, 8] {
            let parallel = mine_parallel_vertical(&s, 6, &config, threads).unwrap();
            assert_eq!(parallel.frequent, sequential.frequent, "threads={threads}");
            assert_eq!(parallel.segment_count, sequential.segment_count);
            assert_eq!(parallel.stats.series_scans, 2);
        }
    }

    #[test]
    fn parallel_vertical_one_thread_delegates() {
        let s = noisy_series(120);
        let config = MineConfig::new(0.5).unwrap();
        let a = mine_parallel_vertical(&s, 6, &config, 1).unwrap();
        let b = crate::vertical::mine_vertical(&s, 6, &config).unwrap();
        assert_eq!(a.frequent, b.frequent);
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn parallel_vertical_honours_zero_deadline() {
        let s = noisy_series(1200);
        let config = MineConfig::new(0.4)
            .unwrap()
            .with_deadline(std::time::Duration::ZERO);
        let err = mine_parallel_vertical(&s, 6, &config, 4).unwrap_err();
        assert!(matches!(err, Error::DeadlineExceeded { .. }), "got {err:?}");
    }

    #[test]
    fn parallel_vertical_rejects_invalid_period() {
        let s = noisy_series(10);
        let config = MineConfig::default();
        assert!(mine_parallel_vertical(&s, 0, &config, 4).is_err());
        assert!(mine_parallel_vertical(&s, 11, &config, 4).is_err());
    }

    #[test]
    fn worker_panic_payloads_become_typed_errors() {
        let e = worker_panic(Box::new("scan-2 worker blew up"));
        assert!(matches!(&e, Error::WorkerPanic { detail } if detail.contains("blew up")));
        let e = worker_panic(Box::new(String::from("heap message")));
        assert!(matches!(&e, Error::WorkerPanic { detail } if detail == "heap message"));
        let e = worker_panic(Box::new(42usize));
        assert!(matches!(&e, Error::WorkerPanic { detail } if detail.contains("non-string")));
    }

    /// Per-instant coin flips on four features: segment hits vary, so the
    /// merged tree genuinely grows.
    fn busy_series(n: usize) -> FeatureSeries {
        let mut b = SeriesBuilder::new();
        let mut x: u64 = 7;
        for _ in 0..n {
            let mut inst = Vec::new();
            for f in 0..4u32 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                if (x >> 33).is_multiple_of(2) {
                    inst.push(fid(f));
                }
            }
            b.push_instant(inst);
        }
        b.finish()
    }

    #[test]
    fn parallel_honours_tree_budget() {
        let s = busy_series(1200);
        let config = MineConfig::new(0.2).unwrap().with_max_tree_nodes(1);
        let err = mine_parallel(&s, 6, &config, 4).unwrap_err();
        match err {
            Error::TreeBudgetExceeded {
                budget: 1, stats, ..
            } => {
                assert!(stats.hit_insertions >= 1);
            }
            other => panic!("expected TreeBudgetExceeded, got {other:?}"),
        }
    }

    #[test]
    fn parallel_honours_zero_deadline() {
        let s = noisy_series(1200);
        let config = MineConfig::new(0.4)
            .unwrap()
            .with_deadline(std::time::Duration::ZERO);
        let err = mine_parallel(&s, 6, &config, 4).unwrap_err();
        assert!(matches!(err, Error::DeadlineExceeded { .. }), "got {err:?}");
    }

    #[test]
    fn invalid_period_is_rejected() {
        let s = noisy_series(10);
        let config = MineConfig::default();
        assert!(mine_parallel(&s, 0, &config, 4).is_err());
        assert!(mine_parallel(&s, 11, &config, 4).is_err());
    }
}
