//! The replication-aware client: retry, backoff, failover, hedging.
//!
//! One daemon can die, stall, or quarantine a store; a deployment runs
//! several. [`FailoverClient`] turns a list of replica endpoints into a
//! single reliable request path:
//!
//! * **Bounded retry with backoff + jitter** — transient trouble
//!   (connect refusal, truncated response, overload, a quarantined
//!   store) is retried in *rounds over all endpoints*: each round tries
//!   every replica once, then sleeps an exponentially growing, seeded
//!   jittered backoff. Typed errors that retrying cannot fix (bad
//!   request, internal failure, partial result) surface immediately.
//! * **Overload hints honored** — an `overload` frame carries the
//!   daemon's `retry_after_ms`; the next backoff sleeps at least that
//!   long, so a shedding daemon is never hammered.
//! * **Stickiness** — the endpoint that last answered is tried first on
//!   the next request; failover moves the preference.
//! * **Hedging** — optionally, if the preferred replica has not answered
//!   within a latency threshold, the same request is duplicated to the
//!   next replica and the first success wins. When both answer, the
//!   responses are compared byte-for-byte (after stripping the `cached`
//!   provenance field, the one place replicas legitimately differ) —
//!   the anti-monotone mining semantics guarantee replicas of the same
//!   store agree, and [`ClientError::Diverged`] reports when reality
//!   disagrees with the guarantee.
//!
//! Everything is deterministic under a fixed [`RetryPolicy::seed`]; the
//! chaos tests rely on that.

use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::sync::mpsc;
use std::time::Duration;

use ppm_observe::Json;

use crate::error::ErrorCode;
use crate::protocol;

/// One replica address.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// A TCP `host:port`.
    Tcp(String),
    /// A Unix-domain socket path.
    Unix(PathBuf),
}

impl Endpoint {
    /// Parses an endpoint string: `unix:/path` or anything containing a
    /// `/` is a Unix socket path; everything else is TCP `host:port`.
    pub fn parse(s: &str) -> Endpoint {
        if let Some(p) = s.strip_prefix("unix:") {
            Endpoint::Unix(PathBuf::from(p))
        } else if s.contains('/') {
            Endpoint::Unix(PathBuf::from(s))
        } else {
            Endpoint::Tcp(s.to_owned())
        }
    }

    fn connect(&self, timeout: Duration) -> io::Result<ClientStream> {
        match self {
            Endpoint::Tcp(addr) => {
                let resolved = addr.to_socket_addrs()?.next().ok_or_else(|| {
                    io::Error::new(
                        io::ErrorKind::InvalidInput,
                        format!("{addr:?} resolves to no address"),
                    )
                })?;
                let s = TcpStream::connect_timeout(&resolved, timeout)?;
                s.set_read_timeout(Some(timeout))?;
                s.set_write_timeout(Some(timeout))?;
                Ok(ClientStream::Tcp(s))
            }
            Endpoint::Unix(path) => {
                let s = UnixStream::connect(path)?;
                s.set_read_timeout(Some(timeout))?;
                s.set_write_timeout(Some(timeout))?;
                Ok(ClientStream::Unix(s))
            }
        }
    }
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Endpoint::Tcp(a) => write!(f, "{a}"),
            Endpoint::Unix(p) => write!(f, "unix:{}", p.display()),
        }
    }
}

enum ClientStream {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Read for ClientStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            ClientStream::Tcp(s) => s.read(buf),
            ClientStream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for ClientStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            ClientStream::Tcp(s) => s.write(buf),
            ClientStream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            ClientStream::Tcp(s) => s.flush(),
            ClientStream::Unix(s) => s.flush(),
        }
    }
}

/// How hard the client tries before giving up.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Retry rounds; each round tries every endpoint once. At least 1.
    pub retries: u32,
    /// Base backoff between rounds (ms); doubles each round.
    pub backoff_ms: u64,
    /// Backoff ceiling (ms), jitter included.
    pub backoff_max_ms: u64,
    /// Per-connect and per-frame I/O timeout (ms).
    pub io_timeout_ms: u64,
    /// Hedge threshold (ms): duplicate the request to the next replica
    /// when the preferred one has not answered within this long. `None`
    /// disables hedging. Needs at least two endpoints to do anything.
    pub hedge_after_ms: Option<u64>,
    /// Seed for the deterministic backoff jitter.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            retries: 3,
            backoff_ms: 50,
            backoff_max_ms: 2_000,
            io_timeout_ms: 5_000,
            hedge_after_ms: None,
            seed: 0x5eed,
        }
    }
}

/// What the client did to get its answers (cumulative over requests).
#[derive(Debug, Clone, Copy, Default)]
pub struct ClientStats {
    /// Wire exchanges attempted (including hedges).
    pub attempts: u64,
    /// Attempts that moved to a different endpoint than the previous one.
    pub failovers: u64,
    /// Hedge requests launched.
    pub hedges: u64,
    /// Hedges whose duplicate answered first.
    pub hedge_wins: u64,
    /// Overload hints that stretched a backoff sleep.
    pub overloads_honored: u64,
    /// Backoff sleeps taken between rounds.
    pub backoffs: u64,
}

/// Why a request ultimately failed. A daemon's *typed* final error
/// (usage, internal, partial result) is not a `ClientError` — the raw
/// error frame is returned as the successful exchange it is, so callers
/// keep their full rendering of it; only transport-level defeat lands
/// here.
#[derive(Debug)]
pub enum ClientError {
    /// Every retry round failed with transient trouble.
    Exhausted {
        /// Wire exchanges attempted for this request.
        attempts: u64,
        /// The last failure observed.
        last: String,
        /// Whether the last transient failure was daemon overload (maps
        /// to exit code 6 rather than 5).
        overloaded: bool,
    },
    /// Two replicas answered the same request with different bytes.
    Diverged {
        /// Which replicas disagreed.
        endpoints: (String, String),
        /// The normalized responses that differed.
        detail: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Exhausted {
                attempts,
                last,
                overloaded,
            } => write!(
                f,
                "retries exhausted after {attempts} attempt(s){}; last failure: {last}",
                if *overloaded {
                    " (daemon overloaded)"
                } else {
                    ""
                }
            ),
            ClientError::Diverged { endpoints, detail } => write!(
                f,
                "replicas {} and {} diverged on the same request: {detail}",
                endpoints.0, endpoints.1
            ),
        }
    }
}

impl std::error::Error for ClientError {}

/// What one wire exchange produced.
enum Answer {
    /// A `result` frame.
    Result(Json),
    /// An `overload` frame with its retry hint (ms).
    Overload(u64),
    /// A typed error worth retrying elsewhere (quarantined store,
    /// retries-exhausted, overloaded).
    Transient(String),
    /// A typed error no retry can fix; the raw frame goes back to the
    /// caller for rendering.
    Final(Json),
}

/// Deterministic jitter (splitmix-style LCG; the workspace takes no
/// dependencies, and tests need reproducible sleeps).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

/// The failover client. Construct once, issue many requests; stats
/// accumulate across them.
pub struct FailoverClient {
    endpoints: Vec<Endpoint>,
    policy: RetryPolicy,
    stats: ClientStats,
    rng: Lcg,
    /// The endpoint that answered last (tried first next time).
    preferred: usize,
}

impl FailoverClient {
    /// A client over `endpoints` (at least one) with the given policy.
    pub fn new(endpoints: Vec<Endpoint>, policy: RetryPolicy) -> FailoverClient {
        let seed = policy.seed;
        FailoverClient {
            endpoints,
            policy,
            stats: ClientStats::default(),
            rng: Lcg(seed),
            preferred: 0,
        }
    }

    /// Cumulative stats.
    pub fn stats(&self) -> ClientStats {
        self.stats
    }

    /// The endpoints this client rotates over.
    pub fn endpoints(&self) -> &[Endpoint] {
        &self.endpoints
    }

    /// Issues one request, retrying/failing over per the policy, and
    /// returns the daemon's `result` frame.
    pub fn request(&mut self, req: &Json) -> Result<Json, ClientError> {
        if self.endpoints.is_empty() {
            return Err(ClientError::Exhausted {
                attempts: 0,
                last: "no endpoints configured".into(),
                overloaded: false,
            });
        }
        let rounds = self.policy.retries.max(1);
        let mut attempts = 0u64;
        let mut last = String::from("never attempted");
        let mut last_overloaded = false;
        let mut overload_hint_ms = 0u64;
        let mut prev_attempted: Option<usize> = None;
        for round in 0..rounds {
            if round > 0 {
                self.sleep_backoff(round, overload_hint_ms);
                overload_hint_ms = 0;
            }
            for k in 0..self.endpoints.len() {
                let idx = (self.preferred + k) % self.endpoints.len();
                if prev_attempted.is_some_and(|p| p != idx) {
                    self.stats.failovers += 1;
                    ppm_observe::counter("client.failover", 1);
                }
                prev_attempted = Some(idx);
                attempts += 1;
                self.stats.attempts += 1;
                let outcome = if k == 0 && self.endpoints.len() >= 2 {
                    self.maybe_hedged_exchange(idx, req)
                } else {
                    exchange(&self.endpoints[idx], self.policy.io_timeout_ms, req).map(|a| (a, idx))
                };
                match outcome {
                    Ok((Answer::Result(resp), winner)) => {
                        self.preferred = winner;
                        return Ok(resp);
                    }
                    Ok((Answer::Overload(ms), idx)) => {
                        last = format!("{} is overloaded", self.endpoints[idx]);
                        last_overloaded = true;
                        overload_hint_ms = overload_hint_ms.max(ms);
                        self.stats.overloads_honored += 1;
                    }
                    Ok((Answer::Transient(msg), _)) => {
                        last = msg;
                        last_overloaded = false;
                    }
                    Ok((Answer::Final(frame), winner)) => {
                        self.preferred = winner;
                        return Ok(frame);
                    }
                    Err(e) => {
                        if let Some(err) = e.diverged {
                            return Err(err);
                        }
                        last = e.message;
                        last_overloaded = false;
                    }
                }
            }
        }
        Err(ClientError::Exhausted {
            attempts,
            last,
            overloaded: last_overloaded,
        })
    }

    /// Exponential backoff with seeded jitter, stretched to at least the
    /// strongest overload hint seen since the last sleep.
    fn sleep_backoff(&mut self, round: u32, overload_hint_ms: u64) {
        let base = self
            .policy
            .backoff_ms
            .saturating_mul(1u64 << (round - 1).min(16))
            .min(self.policy.backoff_max_ms);
        let jitter = self.rng.next() % (base / 2 + 1);
        let ms = (base + jitter)
            .min(self.policy.backoff_max_ms)
            .max(overload_hint_ms);
        self.stats.backoffs += 1;
        std::thread::sleep(Duration::from_millis(ms));
    }

    /// One exchange against `primary`, hedged to the next replica if the
    /// policy says so and the primary is slow. Returns the winning answer
    /// and the index that produced it.
    fn maybe_hedged_exchange(
        &mut self,
        primary: usize,
        req: &Json,
    ) -> Result<(Answer, usize), ExchangeFailure> {
        let Some(hedge_after) = self.policy.hedge_after_ms else {
            return exchange(&self.endpoints[primary], self.policy.io_timeout_ms, req)
                .map(|a| (a, primary));
        };
        let secondary = (primary + 1) % self.endpoints.len();
        let io_ms = self.policy.io_timeout_ms;
        let (tx, rx) = mpsc::channel::<(usize, Result<Answer, ExchangeFailure>)>();
        spawn_exchange(
            tx.clone(),
            primary,
            self.endpoints[primary].clone(),
            io_ms,
            req,
        );
        match rx.recv_timeout(Duration::from_millis(hedge_after)) {
            Ok((idx, outcome)) => return outcome.map(|a| (a, idx)),
            Err(mpsc::RecvTimeoutError::Timeout) => {}
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                return Err(ExchangeFailure::io("hedge channel closed".into()))
            }
        }
        // The primary is slow: duplicate the request to the next replica
        // and take the first success.
        self.stats.hedges += 1;
        self.stats.attempts += 1;
        ppm_observe::counter("client.hedge", 1);
        spawn_exchange(
            tx.clone(),
            secondary,
            self.endpoints[secondary].clone(),
            io_ms,
            req,
        );
        drop(tx);
        let overall = Duration::from_millis(io_ms.saturating_mul(2).max(hedge_after));
        let first = match rx.recv_timeout(overall) {
            Ok(got) => got,
            Err(_) => {
                return Err(ExchangeFailure::io(
                    "neither replica answered the hedged request".into(),
                ))
            }
        };
        // Give the straggler a short grace so byte-identity can actually
        // be checked when both replicas answer; don't stall on it.
        let straggler = rx.recv_timeout(Duration::from_millis(hedge_after)).ok();
        if let (Ok(Answer::Result(a)), Some((sidx, Ok(Answer::Result(b))))) = (&first.1, &straggler)
        {
            let (na, nb) = (normalized(a), normalized(b));
            if na != nb {
                return Err(ExchangeFailure::diverged(ClientError::Diverged {
                    endpoints: (
                        self.endpoints[first.0].to_string(),
                        self.endpoints[*sidx].to_string(),
                    ),
                    detail: format!("{na} != {nb}"),
                }));
            }
        }
        let (fidx, foutcome) = first;
        match foutcome {
            Ok(answer) => {
                if fidx != primary {
                    self.stats.hedge_wins += 1;
                    ppm_observe::counter("client.hedge_win", 1);
                }
                Ok((answer, fidx))
            }
            // The first arrival failed; fall back to the straggler if it
            // did better.
            Err(e) => match straggler {
                Some((sidx, Ok(answer))) => {
                    if sidx != primary {
                        self.stats.hedge_wins += 1;
                        ppm_observe::counter("client.hedge_win", 1);
                    }
                    Ok((answer, sidx))
                }
                _ => Err(e),
            },
        }
    }
}

/// A failed exchange: an I/O-level message, or a divergence verdict that
/// must surface as-is.
struct ExchangeFailure {
    message: String,
    diverged: Option<ClientError>,
}

impl ExchangeFailure {
    fn io(message: String) -> ExchangeFailure {
        ExchangeFailure {
            message,
            diverged: None,
        }
    }

    fn diverged(e: ClientError) -> ExchangeFailure {
        ExchangeFailure {
            message: e.to_string(),
            diverged: Some(e),
        }
    }
}

fn spawn_exchange(
    tx: mpsc::Sender<(usize, Result<Answer, ExchangeFailure>)>,
    idx: usize,
    endpoint: Endpoint,
    io_timeout_ms: u64,
    req: &Json,
) {
    let req = req.clone();
    std::thread::spawn(move || {
        let outcome = exchange(&endpoint, io_timeout_ms, &req);
        let _ = tx.send((idx, outcome));
    });
}

/// One connect → write → read exchange against one endpoint.
fn exchange(
    endpoint: &Endpoint,
    io_timeout_ms: u64,
    req: &Json,
) -> Result<Answer, ExchangeFailure> {
    let timeout = Duration::from_millis(io_timeout_ms.max(1));
    let mut stream = endpoint
        .connect(timeout)
        .map_err(|e| ExchangeFailure::io(format!("connect {endpoint}: {e}")))?;
    protocol::write_frame(&mut stream, req)
        .map_err(|e| ExchangeFailure::io(format!("write to {endpoint}: {e}")))?;
    match protocol::read_frame(&mut stream) {
        Ok(Some(resp)) => Ok(classify(endpoint, resp)),
        Ok(None) => Err(ExchangeFailure::io(format!(
            "{endpoint} closed the connection before answering"
        ))),
        Err(e) => Err(ExchangeFailure::io(format!("read from {endpoint}: {e}"))),
    }
}

/// Sorts a response frame into the retry taxonomy.
fn classify(endpoint: &Endpoint, resp: Json) -> Answer {
    match resp.get("type").and_then(Json::as_str) {
        Some("overload") => Answer::Overload(
            resp.get("retry_after_ms")
                .and_then(Json::as_u64)
                .unwrap_or(0),
        ),
        Some("error") => {
            let code = ErrorCode::from_wire(resp.get("code").and_then(Json::as_u64).unwrap_or(1));
            let message = resp
                .get("message")
                .and_then(Json::as_str)
                .unwrap_or("unspecified error")
                .to_owned();
            // A quarantined *store* is a replica-local disease — another
            // replica's copy may be healthy. Daemon-side retry exhaustion
            // and overload are likewise worth trying elsewhere. Usage,
            // internal, and partial-result errors are not.
            let store_quarantined = matches!(resp.get("store_quarantined"), Some(Json::Bool(true)));
            let transient = matches!(code, ErrorCode::RetriesExhausted | ErrorCode::Overloaded)
                || (code == ErrorCode::Quarantined && store_quarantined);
            if transient {
                Answer::Transient(format!("{endpoint}: {code}: {message}"))
            } else {
                Answer::Final(resp)
            }
        }
        _ => Answer::Result(resp),
    }
}

/// The byte-identity key for hedge comparison: the rendered frame minus
/// the `cached` provenance field (one replica may answer from its cache
/// while the other mined; the rows must still match exactly).
pub fn normalized(resp: &Json) -> String {
    match resp {
        Json::Obj(fields) => Json::Obj(
            fields
                .iter()
                .filter(|(k, _)| k != "cached")
                .cloned()
                .collect(),
        )
        .render(),
        other => other.render(),
    }
}

impl std::fmt::Debug for FailoverClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FailoverClient")
            .field("endpoints", &self.endpoints)
            .field("preferred", &self.preferred)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_parse_distinguishes_tcp_and_unix() {
        assert_eq!(
            Endpoint::parse("127.0.0.1:7070"),
            Endpoint::Tcp("127.0.0.1:7070".into())
        );
        assert_eq!(
            Endpoint::parse("unix:/tmp/ppm.sock"),
            Endpoint::Unix(PathBuf::from("/tmp/ppm.sock"))
        );
        assert_eq!(
            Endpoint::parse("/tmp/ppm.sock"),
            Endpoint::Unix(PathBuf::from("/tmp/ppm.sock"))
        );
    }

    #[test]
    fn jitter_is_deterministic_under_a_seed() {
        let mut a = Lcg(42);
        let mut b = Lcg(42);
        let seq_a: Vec<u64> = (0..8).map(|_| a.next()).collect();
        let seq_b: Vec<u64> = (0..8).map(|_| b.next()).collect();
        assert_eq!(seq_a, seq_b);
        let mut c = Lcg(43);
        assert_ne!(seq_a[0], c.next(), "different seed, different stream");
    }

    #[test]
    fn classify_sorts_the_taxonomy() {
        let ep = Endpoint::Tcp("127.0.0.1:1".into());
        match classify(&ep, protocol::overload_response(250)) {
            Answer::Overload(250) => {}
            _ => panic!("overload frame should classify as Overload"),
        }
        let quarantined = protocol::error_response(
            ErrorCode::Quarantined,
            "store is quarantined".into(),
            vec![("store_quarantined".to_owned(), Json::Bool(true))],
        );
        assert!(matches!(classify(&ep, quarantined), Answer::Transient(_)));
        // Data-quarantine code 4 *without* the marker is final: it means
        // the query itself asked for quarantine handling and failed.
        let other4 =
            protocol::error_response(ErrorCode::Quarantined, "bad rows".into(), Vec::new());
        assert!(matches!(classify(&ep, other4), Answer::Final(_)));
        let usage = protocol::error_response(ErrorCode::Usage, "bad period".into(), Vec::new());
        assert!(matches!(classify(&ep, usage), Answer::Final(_)));
        let exhausted = protocol::error_response(
            ErrorCode::RetriesExhausted,
            "faults survived retries".into(),
            Vec::new(),
        );
        assert!(matches!(classify(&ep, exhausted), Answer::Transient(_)));
        let ok = protocol::result_response("mine", Vec::new());
        assert!(matches!(classify(&ep, ok), Answer::Result(_)));
    }

    #[test]
    fn normalization_strips_only_cache_provenance() {
        let a = protocol::result_response(
            "mine",
            vec![
                ("rows".to_owned(), Json::Arr(vec![Json::from_u64(1)])),
                ("cached".to_owned(), Json::Str("hit".to_owned())),
            ],
        );
        let b = protocol::result_response(
            "mine",
            vec![
                ("rows".to_owned(), Json::Arr(vec![Json::from_u64(1)])),
                ("cached".to_owned(), Json::Str("miss".to_owned())),
            ],
        );
        assert_eq!(normalized(&a), normalized(&b));
        let c = protocol::result_response(
            "mine",
            vec![("rows".to_owned(), Json::Arr(vec![Json::from_u64(2)]))],
        );
        assert_ne!(normalized(&a), normalized(&c));
    }

    #[test]
    fn dead_single_endpoint_exhausts_with_bounded_attempts() {
        // Port 1 on localhost refuses immediately; the client must make
        // exactly rounds × endpoints attempts and then report exhaustion.
        let mut client = FailoverClient::new(
            vec![Endpoint::Tcp("127.0.0.1:1".into())],
            RetryPolicy {
                retries: 3,
                backoff_ms: 1,
                backoff_max_ms: 2,
                io_timeout_ms: 200,
                hedge_after_ms: None,
                seed: 7,
            },
        );
        let req = protocol::result_response("mine", Vec::new());
        match client.request(&req) {
            Err(ClientError::Exhausted {
                attempts,
                overloaded,
                ..
            }) => {
                assert_eq!(attempts, 3);
                assert!(!overloaded);
            }
            other => panic!("expected exhaustion, got {other:?}"),
        }
        assert_eq!(client.stats().attempts, 3);
        assert_eq!(client.stats().backoffs, 2, "sleeps between rounds only");
    }
}
