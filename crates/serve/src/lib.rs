//! `ppm-serve`: a fault-tolerant multi-tenant mining daemon.
//!
//! The daemon keeps hot `.ppmc` columnar stores open for the process
//! lifetime and answers concurrent `mine` / `rules` / `verify` / `info`
//! queries over a length-prefixed JSON protocol ([`protocol`]) on TCP or
//! a Unix socket. It is built from four robustness mechanisms, each its
//! own module:
//!
//! * **Admission control** ([`server`]) — a bounded queue between the
//!   accept loop and the worker pool; overload sheds with an explicit
//!   retry hint instead of queueing without bound.
//! * **Fault containment** ([`server`]) — every query runs under
//!   `catch_unwind`; a panicking query becomes a structured error
//!   response while the daemon keeps serving.
//! * **Crash-safe caching** ([`cache`]) — mined results keyed by
//!   (store fingerprint, period, min_conf, engine), persisted with
//!   per-entry checksums and atomic publish; a lower-confidence entry
//!   answers higher-confidence queries by anti-monotone filtering.
//! * **Graceful lifecycle** ([`signal`], [`server`]) — SIGTERM drains
//!   in-flight work under a deadline, rejects new admissions, flushes
//!   the cache, and exits cleanly; `kill -9` is recovered by the cache's
//!   checksums and the store's atomic publish discipline.
//! * **Health gating** ([`store`], [`server`]) — periodic checksum
//!   re-verification quarantines a store whose backing file went bad;
//!   healthy stores keep serving while the quarantined one returns a
//!   typed error the failover client treats as "try another replica".
//! * **Replication-aware querying** ([`client`]) — a failover client
//!   that retries transients with exponential backoff + jitter across
//!   replica endpoints, honors overload `retry_after_ms` hints, and can
//!   hedge a duplicate request after a latency threshold, asserting
//!   byte-identical results whichever replica answers.
//! * **Chaos testing** ([`chaos`]) — a deterministic seeded proxy that
//!   delays, truncates, corrupts, duplicates, and severs frames between
//!   client and daemon; the harness the soak tests and CI use to prove
//!   the mechanisms above actually hold.
//! * **Observability** ([`metrics`]) — per-query latency histograms
//!   (queue wait, service time, scan1/scan2/derive/cache phases),
//!   Prometheus-style exposition via the `metrics` op and
//!   `--metrics-out`, a JSON-lines access log with slow-query span
//!   detail, and an always-on flight recorder dumped on `SIGUSR1`,
//!   panic containment, and overload shedding.
//!
//! The error taxonomy ([`ErrorCode`]) is shared with the CLI, so
//! `ppm query` exits with the same codes the daemon speaks on the wire.

// `deny`, not `forbid`: the signal shim opts back in for its two-line
// `extern "C"` declaration (the workspace is dependency-free, so there is
// no `libc` crate to hide it behind).
#![deny(unsafe_code)]
#![deny(missing_docs)]

pub mod cache;
pub mod chaos;
pub mod client;
pub mod error;
pub mod metrics;
pub mod protocol;
pub mod server;
pub mod signal;
pub mod store;

pub use cache::{
    CacheKey, CacheLimits, CacheOutcome, CacheStats, CachedResult, CachedRow, ResultCache,
};
pub use chaos::{ChaosConfig, ChaosProxy};
pub use client::{ClientError, ClientStats, Endpoint, FailoverClient, RetryPolicy};
pub use error::ErrorCode;
pub use metrics::{AccessLog, AccessRecord, PhaseCapture, ServeMetrics};
pub use server::{Bind, BoundAddr, ServeConfig, Server};
pub use store::{Store, StoreRegistry};
