//! Minimal signal hookup: flips a flag on SIGTERM/SIGINT.
//!
//! The workspace is zero-dependency, so instead of the `libc` crate this
//! module declares the two symbols it needs from the C library that `std`
//! already links. The handler is async-signal-safe by construction — it
//! performs exactly one atomic store — and everything else (draining,
//! cache flush, exit) happens on ordinary threads that poll the flag.

#![allow(unsafe_code)]

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// `SIGINT` on every platform this workspace targets.
const SIGINT: i32 = 2;
/// `SIGUSR1` on every platform this workspace targets.
const SIGUSR1: i32 = 10;
/// `SIGTERM` on every platform this workspace targets.
const SIGTERM: i32 = 15;

static SHUTDOWN: AtomicBool = AtomicBool::new(false);
static FLIGHT_DUMP: AtomicBool = AtomicBool::new(false);

extern "C" {
    fn signal(signum: i32, handler: usize) -> usize;
}

extern "C" fn on_signal(_signum: i32) {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

extern "C" fn on_usr1(_signum: i32) {
    FLIGHT_DUMP.store(true, Ordering::SeqCst);
}

/// Installs the termination handler (idempotent) and returns the flag it
/// flips. The returned handle is the same process-wide flag every call
/// sees; [`requested`] reads it without installing anything.
pub fn install_termination_handler() -> Arc<ShutdownFlag> {
    unsafe {
        signal(SIGTERM, on_signal as *const () as usize);
        signal(SIGINT, on_signal as *const () as usize);
    }
    Arc::new(ShutdownFlag(()))
}

/// Whether a termination signal has been observed (or [`ShutdownFlag::set`]
/// was called programmatically).
pub fn requested() -> bool {
    SHUTDOWN.load(Ordering::SeqCst)
}

/// Installs the `SIGUSR1` handler (idempotent). The daemon's accept loop
/// polls [`take_flight_dump`] and writes the flight-recorder dump when it
/// fires — the handler itself only stores one atomic flag.
pub fn install_usr1_handler() {
    unsafe {
        signal(SIGUSR1, on_usr1 as *const () as usize);
    }
}

/// Consumes a pending flight-dump request: returns `true` at most once
/// per `SIGUSR1` (or per [`request_flight_dump`]).
pub fn take_flight_dump() -> bool {
    FLIGHT_DUMP.swap(false, Ordering::SeqCst)
}

/// Requests a flight-recorder dump programmatically — what `SIGUSR1`
/// does, without a signal, so in-process tests can exercise the dump
/// path.
pub fn request_flight_dump() {
    FLIGHT_DUMP.store(true, Ordering::SeqCst);
}

/// A handle over the process-wide shutdown flag.
#[derive(Debug)]
pub struct ShutdownFlag(());

impl ShutdownFlag {
    /// Whether shutdown has been requested.
    pub fn is_set(&self) -> bool {
        requested()
    }

    /// Requests shutdown programmatically (the `shutdown` op and tests use
    /// this; signals go through the handler).
    pub fn set(&self) {
        SHUTDOWN.store(true, Ordering::SeqCst);
    }

    /// Clears the flag — for tests that run several server lifecycles in
    /// one process.
    pub fn clear(&self) {
        SHUTDOWN.store(false, Ordering::SeqCst);
    }
}
