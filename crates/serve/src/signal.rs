//! Minimal signal hookup: flips a flag on SIGTERM/SIGINT.
//!
//! The workspace is zero-dependency, so instead of the `libc` crate this
//! module declares the two symbols it needs from the C library that `std`
//! already links. The handler is async-signal-safe by construction — it
//! performs exactly one atomic store — and everything else (draining,
//! cache flush, exit) happens on ordinary threads that poll the flag.

#![allow(unsafe_code)]

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// `SIGINT` on every platform this workspace targets.
const SIGINT: i32 = 2;
/// `SIGTERM` on every platform this workspace targets.
const SIGTERM: i32 = 15;

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

extern "C" {
    fn signal(signum: i32, handler: usize) -> usize;
}

extern "C" fn on_signal(_signum: i32) {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Installs the termination handler (idempotent) and returns the flag it
/// flips. The returned handle is the same process-wide flag every call
/// sees; [`requested`] reads it without installing anything.
pub fn install_termination_handler() -> Arc<ShutdownFlag> {
    unsafe {
        signal(SIGTERM, on_signal as *const () as usize);
        signal(SIGINT, on_signal as *const () as usize);
    }
    Arc::new(ShutdownFlag(()))
}

/// Whether a termination signal has been observed (or [`ShutdownFlag::set`]
/// was called programmatically).
pub fn requested() -> bool {
    SHUTDOWN.load(Ordering::SeqCst)
}

/// A handle over the process-wide shutdown flag.
#[derive(Debug)]
pub struct ShutdownFlag(());

impl ShutdownFlag {
    /// Whether shutdown has been requested.
    pub fn is_set(&self) -> bool {
        requested()
    }

    /// Requests shutdown programmatically (the `shutdown` op and tests use
    /// this; signals go through the handler).
    pub fn set(&self) {
        SHUTDOWN.store(true, Ordering::SeqCst);
    }

    /// Clears the flag — for tests that run several server lifecycles in
    /// one process.
    pub fn clear(&self) {
        SHUTDOWN.store(false, Ordering::SeqCst);
    }
}
