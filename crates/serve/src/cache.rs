//! The crash-safe result cache: mined answers keyed by
//! `(store fingerprint, period, min_conf, engine)`, persisted with the
//! checksummed atomic-publish discipline, exploiting anti-monotonicity to
//! answer *stricter* queries from *looser* cached results.
//!
//! ## The anti-monotonicity rule
//!
//! A pattern is frequent at confidence `c` iff its segment count reaches
//! `min_count(c) = max(1, ceil(c · m))` over `m` segments, and
//! `min_count` is monotone in `c`. A cached result mined at `c_lo`
//! therefore contains a superset of every result at `c_hi ≥ c_lo` for the
//! same `(fingerprint, period, engine)`: filtering its rows by
//! `count ≥ min_count(c_hi)` reproduces the direct mine *bit-identically*,
//! because rows are stored in the canonical report order (pattern length
//! desc, count desc) which filtering preserves.
//!
//! Derivation is restricted to the `hitset` and `vertical` engines, whose
//! scan count is a constant 2 regardless of confidence — so the echoed
//! `scans` field also matches a direct mine. Apriori's scan count varies
//! with the confidence, so Apriori entries only ever answer exact-key
//! hits.
//!
//! ## Crash safety
//!
//! The file is line-oriented: a magic header, then one `entry <fnv16hex>
//! <json>` line per cached result, each line's checksum covering its own
//! JSON. Saves go through a same-directory temp file + fsync + atomic
//! rename + parent-dir fsync. On load, a damaged line is *rejected by
//! name* (the offending line number and, when parseable, its key are
//! reported) while intact entries survive — a torn tail after `kill -9`
//! costs at most the entry being written, never the warm cache.
//!
//! ## Bounded growth
//!
//! The cache is capped by entry count *and* by approximate resident
//! bytes ([`CacheLimits`]). Past either cap, inserts evict via
//! second-chance (clock): a lookup that answered from an entry — exact
//! hit or anti-monotone donor — sets its referenced bit; the clock hand
//! gives each referenced entry one more round before evicting it.
//! Eviction rewrites the file through the same temp + atomic-rename
//! publish as every save, so `kill -9` mid-evict leaves either the old
//! complete file or the new complete file, never a hybrid.

use std::fmt::Write as _;
use std::fs::File;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use ppm_core::MineConfig;
use ppm_observe::Json;

const MAGIC: &str = "ppm-serve-cache v1";

/// FNV-1a over `bytes` (the same streaming hash the storage formats use).
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A cache key. Confidence is keyed by its exact bit pattern — two
/// requests hit the same entry only when they asked for the same `f64`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheKey {
    /// The store's content fingerprint.
    pub fingerprint: u64,
    /// Mining period.
    pub period: usize,
    /// `min_conf.to_bits()`.
    pub conf_bits: u64,
    /// Engine name (`hitset` / `apriori` / `vertical`).
    pub engine: String,
}

impl CacheKey {
    fn conf(&self) -> f64 {
        f64::from_bits(self.conf_bits)
    }

    fn describe(&self) -> String {
        format!(
            "fp={:016x} period={} conf={} engine={}",
            self.fingerprint,
            self.period,
            self.conf(),
            self.engine
        )
    }
}

/// One cached pattern row, in canonical report order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CachedRow {
    /// The rendered pattern (catalog names are fixed per fingerprint).
    pub display: String,
    /// Number of letters in the pattern (the primary sort key).
    pub letters: usize,
    /// Segment count of the pattern.
    pub count: u64,
}

/// A cached mining answer: everything a `mine` response needs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CachedResult {
    /// Segments the period divided the series into.
    pub segment_count: usize,
    /// Physical series scans the original mine performed.
    pub scans: usize,
    /// Every frequent pattern, sorted (letters desc, count desc).
    pub rows: Vec<CachedRow>,
}

/// How a lookup was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// The exact key was cached.
    Hit,
    /// Derived from a lower-confidence entry by anti-monotone filtering.
    Derived,
    /// Not answerable from cache.
    Miss,
}

/// Counters the daemon's `stats` op exposes.
#[derive(Debug, Clone, Copy, Default)]
pub struct CacheStats {
    /// Exact-key hits.
    pub hits: u64,
    /// Anti-monotone derivations.
    pub derived: u64,
    /// Lookups that had to mine.
    pub misses: u64,
    /// Entries rejected as damaged at load time.
    pub rejected: u64,
    /// Entries evicted by the second-chance bound.
    pub evictions: u64,
    /// Live entries.
    pub entries: usize,
    /// Approximate resident bytes (serialized entry sizes).
    pub bytes: usize,
}

/// The growth bounds the cache enforces on every insert (and at load).
#[derive(Debug, Clone, Copy)]
pub struct CacheLimits {
    /// Maximum live entries; 0 disables caching entirely.
    pub max_entries: usize,
    /// Maximum approximate resident bytes (serialized entry sizes).
    pub max_bytes: usize,
}

impl Default for CacheLimits {
    fn default() -> Self {
        CacheLimits {
            max_entries: 1024,
            max_bytes: 16 << 20,
        }
    }
}

/// One resident entry plus its second-chance bookkeeping.
#[derive(Debug)]
struct Entry {
    key: CacheKey,
    value: CachedResult,
    /// Serialized size, charged against [`CacheLimits::max_bytes`].
    bytes: usize,
    /// Second-chance bit: set when the entry answered a lookup (exact hit
    /// or anti-monotone donor), cleared when the clock hand passes it.
    referenced: bool,
}

/// The cache proper. All mutation goes through [`Self::insert`], which
/// persists immediately when a backing path is configured.
#[derive(Debug)]
pub struct ResultCache {
    path: Option<PathBuf>,
    entries: Vec<Entry>,
    limits: CacheLimits,
    /// The second-chance clock hand (index into `entries`).
    hand: usize,
    hits: u64,
    derived: u64,
    misses: u64,
    rejected: u64,
    evictions: u64,
}

impl ResultCache {
    /// An in-memory cache (no persistence) with default limits.
    pub fn in_memory() -> Self {
        Self::in_memory_with_limits(CacheLimits::default())
    }

    /// An in-memory cache with explicit growth bounds.
    pub fn in_memory_with_limits(limits: CacheLimits) -> Self {
        ResultCache {
            path: None,
            entries: Vec::new(),
            limits,
            hand: 0,
            hits: 0,
            derived: 0,
            misses: 0,
            rejected: 0,
            evictions: 0,
        }
    }

    /// Opens (or initializes) a persistent cache at `path` with default
    /// limits. See [`Self::open_with_limits`].
    pub fn open(path: impl AsRef<Path>) -> Self {
        Self::open_with_limits(path, CacheLimits::default())
    }

    /// Opens (or initializes) a persistent cache at `path`. A missing file
    /// starts empty; a present file is loaded entry by entry, rejecting
    /// damaged lines by name while keeping every intact one. A file that
    /// outgrew the configured limits (say, after a config change) is
    /// trimmed back under them immediately.
    pub fn open_with_limits(path: impl AsRef<Path>, limits: CacheLimits) -> Self {
        let path = path.as_ref().to_path_buf();
        let mut cache = ResultCache {
            path: Some(path.clone()),
            entries: Vec::new(),
            limits,
            hand: 0,
            hits: 0,
            derived: 0,
            misses: 0,
            rejected: 0,
            evictions: 0,
        };
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(_) => return cache,
        };
        let mut lines = text.lines().enumerate();
        match lines.next() {
            Some((_, first)) if first == MAGIC => {}
            _ => {
                ppm_observe::mark("serve.cache.rejected", || {
                    format!("cache {} has a bad header; starting cold", path.display())
                });
                cache.rejected += 1;
                return cache;
            }
        }
        for (lineno, line) in lines {
            if line.is_empty() {
                continue;
            }
            match Self::parse_entry(line) {
                Ok((key, value)) => {
                    let bytes = Self::entry_json(&key, &value).render().len();
                    cache.entries.push(Entry {
                        key,
                        value,
                        bytes,
                        referenced: false,
                    });
                }
                Err(why) => {
                    cache.rejected += 1;
                    ppm_observe::mark("serve.cache.rejected", || {
                        format!("cache line {}: {why}", lineno + 1)
                    });
                }
            }
        }
        // A file written under looser limits must come back under ours.
        if cache.over_limit() {
            cache.evict_to_limit();
            cache.flush();
        }
        cache
    }

    /// Parses one `entry <fnv16hex> <json>` line.
    fn parse_entry(line: &str) -> Result<(CacheKey, CachedResult), String> {
        let rest = line
            .strip_prefix("entry ")
            .ok_or_else(|| format!("unrecognized line {line:?}"))?;
        let (sum_hex, json_text) = rest
            .split_once(' ')
            .ok_or_else(|| "missing checksum separator".to_owned())?;
        let stored = u64::from_str_radix(sum_hex, 16).map_err(|_| "bad checksum hex".to_owned())?;
        if fnv64(json_text.as_bytes()) != stored {
            // Name the damaged entry when its key is still readable.
            let named = Json::parse(json_text)
                .ok()
                .and_then(|j| Self::json_key(&j).ok())
                .map(|k| k.describe())
                .unwrap_or_else(|| "unreadable key".to_owned());
            return Err(format!("checksum mismatch, rejecting entry ({named})"));
        }
        let json = Json::parse(json_text).map_err(|e| format!("bad entry JSON: {e}"))?;
        let key = Self::json_key(&json)?;
        let segment_count = json
            .get("segments")
            .and_then(Json::as_u64)
            .ok_or("missing segments")? as usize;
        let scans = json
            .get("scans")
            .and_then(Json::as_u64)
            .ok_or("missing scans")? as usize;
        let rows = json
            .get("rows")
            .and_then(Json::as_arr)
            .ok_or("missing rows")?
            .iter()
            .map(|row| {
                let arr = row
                    .as_arr()
                    .filter(|a| a.len() == 3)
                    .ok_or("malformed row")?;
                Ok(CachedRow {
                    display: arr[0]
                        .as_str()
                        .ok_or("row display not a string")?
                        .to_owned(),
                    letters: arr[1].as_u64().ok_or("row letters not a number")? as usize,
                    count: arr[2].as_u64().ok_or("row count not a number")?,
                })
            })
            .collect::<Result<Vec<_>, &str>>()
            .map_err(str::to_owned)?;
        Ok((
            key,
            CachedResult {
                segment_count,
                scans,
                rows,
            },
        ))
    }

    fn json_key(json: &Json) -> Result<CacheKey, String> {
        let hex = |field: &str| {
            json.get(field)
                .and_then(Json::as_str)
                .and_then(|s| u64::from_str_radix(s, 16).ok())
                .ok_or_else(|| format!("missing hex field {field:?}"))
        };
        Ok(CacheKey {
            fingerprint: hex("fp")?,
            period: json
                .get("period")
                .and_then(Json::as_u64)
                .ok_or("missing period")? as usize,
            conf_bits: hex("conf_bits")?,
            engine: json
                .get("engine")
                .and_then(Json::as_str)
                .ok_or("missing engine")?
                .to_owned(),
        })
    }

    /// Looks up `key`. Exact hits return the entry verbatim; for the
    /// constant-scan engines (`hitset` / `vertical`) a cached entry at a
    /// *lower* confidence answers by anti-monotone filtering (see module
    /// docs). Counters update accordingly.
    pub fn lookup(&mut self, key: &CacheKey) -> (Option<CachedResult>, CacheOutcome) {
        if let Some(e) = self.entries.iter_mut().find(|e| &e.key == key) {
            e.referenced = true;
            self.hits += 1;
            return (Some(e.value.clone()), CacheOutcome::Hit);
        }
        if matches!(key.engine.as_str(), "hitset" | "vertical") {
            let conf = key.conf();
            // The best donor: the *highest* cached confidence not above the
            // query's, so the filter discards as little as possible.
            let donor = self
                .entries
                .iter_mut()
                .filter(|e| {
                    e.key.fingerprint == key.fingerprint
                        && e.key.period == key.period
                        && e.key.engine == key.engine
                        && e.key.conf() <= conf
                })
                .max_by(|a, b| a.key.conf().total_cmp(&b.key.conf()));
            if let Some(e) = donor {
                e.referenced = true;
                let v = &e.value;
                let min_count = match MineConfig::new(conf) {
                    Ok(c) => c.min_count(v.segment_count),
                    Err(_) => {
                        self.misses += 1;
                        return (None, CacheOutcome::Miss);
                    }
                };
                let rows: Vec<CachedRow> = v
                    .rows
                    .iter()
                    .filter(|r| r.count >= min_count)
                    .cloned()
                    .collect();
                let derived = CachedResult {
                    segment_count: v.segment_count,
                    scans: v.scans,
                    rows,
                };
                self.derived += 1;
                return (Some(derived), CacheOutcome::Derived);
            }
        }
        self.misses += 1;
        (None, CacheOutcome::Miss)
    }

    /// Inserts (or replaces) an entry, evicts past the configured bounds
    /// (second-chance), and persists the cache when backed by a file.
    /// Persistence failures are reported as a mark, not an error — the
    /// cache is an accelerator, never a correctness gate.
    pub fn insert(&mut self, key: CacheKey, value: CachedResult) {
        if self.limits.max_entries == 0 {
            return;
        }
        self.entries.retain(|e| e.key != key);
        let bytes = Self::entry_json(&key, &value).render().len();
        // A fresh entry starts referenced: it survives the first clock
        // sweep its own insert triggers, so inserting can never evict the
        // entry being inserted while older unreferenced ones remain.
        self.entries.push(Entry {
            key,
            value,
            bytes,
            referenced: true,
        });
        if self.over_limit() {
            self.evict_to_limit();
        }
        self.flush();
    }

    fn resident_bytes(&self) -> usize {
        self.entries.iter().map(|e| e.bytes).sum()
    }

    fn over_limit(&self) -> bool {
        self.entries.len() > self.limits.max_entries
            || self.resident_bytes() > self.limits.max_bytes
    }

    /// Second-chance (clock) eviction down to the configured bounds. The
    /// hand sweeps the entry list; a referenced entry spends its bit and
    /// survives the round, an unreferenced one is evicted. Terminates
    /// because every sweep either evicts or clears a bit.
    fn evict_to_limit(&mut self) {
        while self.over_limit() && !self.entries.is_empty() {
            if self.hand >= self.entries.len() {
                self.hand = 0;
            }
            if self.entries[self.hand].referenced {
                self.entries[self.hand].referenced = false;
                self.hand += 1;
            } else {
                let victim = self.entries.remove(self.hand);
                self.evictions += 1;
                ppm_observe::counter("serve.cache.evictions", 1);
                ppm_observe::mark("serve.cache.evicted", || {
                    format!("evicted {} ({} bytes)", victim.key.describe(), victim.bytes)
                });
            }
        }
    }

    /// Writes the cache file atomically (no-op for in-memory caches).
    pub fn flush(&self) {
        let Some(path) = &self.path else { return };
        if let Err(e) = self.save_to(path) {
            ppm_observe::mark("serve.cache.save_failed", || {
                format!("cache save to {} failed: {e}", path.display())
            });
        }
    }

    fn save_to(&self, path: &Path) -> std::io::Result<()> {
        let mut text = String::with_capacity(1024);
        text.push_str(MAGIC);
        text.push('\n');
        for e in &self.entries {
            let json = Self::entry_json(&e.key, &e.value).render();
            let _ = writeln!(text, "entry {:016x} {json}", fnv64(json.as_bytes()));
        }
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = PathBuf::from(tmp);
        {
            let mut f = File::create(&tmp)?;
            f.write_all(text.as_bytes())?;
            f.sync_all()?;
        }
        if let Err(e) = std::fs::rename(&tmp, path) {
            std::fs::remove_file(&tmp).ok();
            return Err(e);
        }
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            if let Ok(d) = File::open(dir) {
                d.sync_all().ok();
            }
        }
        Ok(())
    }

    fn entry_json(key: &CacheKey, value: &CachedResult) -> Json {
        Json::Obj(vec![
            (
                "fp".to_owned(),
                Json::Str(format!("{:016x}", key.fingerprint)),
            ),
            ("period".to_owned(), Json::from_usize(key.period)),
            (
                "conf_bits".to_owned(),
                Json::Str(format!("{:016x}", key.conf_bits)),
            ),
            ("engine".to_owned(), Json::Str(key.engine.clone())),
            ("segments".to_owned(), Json::from_usize(value.segment_count)),
            ("scans".to_owned(), Json::from_usize(value.scans)),
            (
                "rows".to_owned(),
                Json::Arr(
                    value
                        .rows
                        .iter()
                        .map(|r| {
                            Json::Arr(vec![
                                Json::Str(r.display.clone()),
                                Json::from_usize(r.letters),
                                Json::from_u64(r.count),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            derived: self.derived,
            misses: self.misses,
            rejected: self.rejected,
            evictions: self.evictions,
            entries: self.entries.len(),
            bytes: self.resident_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(conf: f64) -> CacheKey {
        CacheKey {
            fingerprint: 0xabcd,
            period: 3,
            conf_bits: conf.to_bits(),
            engine: "hitset".to_owned(),
        }
    }

    fn sample_value() -> CachedResult {
        CachedResult {
            segment_count: 10,
            scans: 2,
            rows: vec![
                CachedRow {
                    display: "a b".into(),
                    letters: 2,
                    count: 5,
                },
                CachedRow {
                    display: "a *".into(),
                    letters: 1,
                    count: 9,
                },
                CachedRow {
                    display: "* b".into(),
                    letters: 1,
                    count: 5,
                },
            ],
        }
    }

    fn temp(tag: &str) -> PathBuf {
        static N: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let n = N.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        std::env::temp_dir().join(format!("ppm-serve-cache-{}-{tag}-{n}", std::process::id()))
    }

    #[test]
    fn exact_hits_and_misses() {
        let mut c = ResultCache::in_memory();
        assert_eq!(c.lookup(&key(0.5)).1, CacheOutcome::Miss);
        c.insert(key(0.5), sample_value());
        let (got, outcome) = c.lookup(&key(0.5));
        assert_eq!(outcome, CacheOutcome::Hit);
        assert_eq!(got.unwrap(), sample_value());
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
    }

    #[test]
    fn higher_confidence_derives_by_filtering() {
        let mut c = ResultCache::in_memory();
        c.insert(key(0.4), sample_value());
        // min_count(0.9, 10) = 9: only the count-9 row survives.
        let (got, outcome) = c.lookup(&key(0.9));
        assert_eq!(outcome, CacheOutcome::Derived);
        let got = got.unwrap();
        assert_eq!(got.rows.len(), 1);
        assert_eq!(got.rows[0].display, "a *");
        assert_eq!(got.scans, 2, "scans echo the donor entry");
        // Lower confidence than any cached entry cannot be derived.
        assert_eq!(c.lookup(&key(0.1)).1, CacheOutcome::Miss);
    }

    #[test]
    fn apriori_entries_only_answer_exact_keys() {
        let mut c = ResultCache::in_memory();
        let mut k = key(0.4);
        k.engine = "apriori".to_owned();
        c.insert(k.clone(), sample_value());
        assert_eq!(c.lookup(&k).1, CacheOutcome::Hit);
        let mut higher = k.clone();
        higher.conf_bits = 0.9f64.to_bits();
        assert_eq!(c.lookup(&higher).1, CacheOutcome::Miss);
    }

    #[test]
    fn persists_and_reloads() {
        let path = temp("reload");
        {
            let mut c = ResultCache::open(&path);
            c.insert(key(0.5), sample_value());
        }
        let mut c = ResultCache::open(&path);
        let (got, outcome) = c.lookup(&key(0.5));
        assert_eq!(outcome, CacheOutcome::Hit);
        assert_eq!(got.unwrap(), sample_value());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn damaged_entries_are_rejected_by_name_and_the_rest_survive() {
        let path = temp("damaged");
        {
            let mut c = ResultCache::open(&path);
            c.insert(key(0.5), sample_value());
            let mut other = key(0.7);
            other.period = 4;
            c.insert(other, sample_value());
        }
        // Corrupt the second entry's JSON tail.
        let text = std::fs::read_to_string(&path).unwrap();
        let mut lines: Vec<String> = text.lines().map(str::to_owned).collect();
        assert_eq!(lines.len(), 3);
        let n = lines[2].len();
        lines[2].replace_range(n - 3..n, "!!!");
        std::fs::write(&path, lines.join("\n")).unwrap();

        let mut c = ResultCache::open(&path);
        assert_eq!(c.stats().rejected, 1);
        assert_eq!(c.stats().entries, 1);
        assert_eq!(c.lookup(&key(0.5)).1, CacheOutcome::Hit);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn torn_tail_after_a_crash_keeps_the_prefix() {
        let path = temp("torn");
        {
            let mut c = ResultCache::open(&path);
            c.insert(key(0.5), sample_value());
            c.insert(key(0.6), sample_value());
        }
        let bytes = std::fs::read(&path).unwrap();
        // Simulate kill -9 mid-write: truncate at every byte; the loader
        // must never panic and always keep the intact prefix entries.
        for cut in 0..bytes.len() {
            std::fs::write(&path, &bytes[..cut]).unwrap();
            let c = ResultCache::open(&path);
            assert!(c.stats().entries <= 2, "cut {cut}");
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn missing_file_starts_cold() {
        let c = ResultCache::open(temp("missing"));
        assert_eq!(c.stats().entries, 0);
        assert_eq!(c.stats().rejected, 0);
    }

    fn limits(max_entries: usize, max_bytes: usize) -> CacheLimits {
        CacheLimits {
            max_entries,
            max_bytes,
        }
    }

    #[test]
    fn entry_cap_is_enforced_on_every_insert() {
        let mut c = ResultCache::in_memory_with_limits(limits(3, usize::MAX));
        for period in 1..=10usize {
            let mut k = key(0.5);
            k.period = period;
            c.insert(k, sample_value());
            assert!(c.stats().entries <= 3, "after period {period}");
        }
        let s = c.stats();
        assert_eq!(s.entries, 3);
        assert_eq!(s.evictions, 7);
    }

    #[test]
    fn byte_cap_is_enforced_too() {
        let one_entry_bytes = {
            let mut c = ResultCache::in_memory();
            c.insert(key(0.5), sample_value());
            c.stats().bytes
        };
        // Room for two entries, not three.
        let mut c = ResultCache::in_memory_with_limits(limits(100, one_entry_bytes * 2 + 1));
        for period in 1..=5usize {
            let mut k = key(0.5);
            k.period = period;
            c.insert(k, sample_value());
        }
        let s = c.stats();
        assert!(s.entries <= 2, "{s:?}");
        assert!(s.bytes <= one_entry_bytes * 2 + 1, "{s:?}");
        assert!(s.evictions >= 3, "{s:?}");
    }

    #[test]
    fn second_chance_keeps_the_recently_answered_entry() {
        let mut c = ResultCache::in_memory_with_limits(limits(2, usize::MAX));
        let mut hot = key(0.5);
        hot.period = 1;
        let mut cold = key(0.5);
        cold.period = 2;
        c.insert(hot.clone(), sample_value());
        c.insert(cold.clone(), sample_value());
        // Spend both insert-time bits so only the lookup below re-arms one.
        c.entries.iter_mut().for_each(|e| e.referenced = false);
        assert_eq!(c.lookup(&hot).1, CacheOutcome::Hit);
        let mut third = key(0.5);
        third.period = 3;
        c.insert(third.clone(), sample_value());
        assert_eq!(c.stats().entries, 2);
        assert_eq!(c.lookup(&hot).1, CacheOutcome::Hit, "hot entry survived");
        assert_eq!(c.lookup(&third).1, CacheOutcome::Hit, "new entry resident");
        assert_eq!(c.lookup(&cold).1, CacheOutcome::Miss, "cold entry evicted");
    }

    #[test]
    fn zero_entry_limit_disables_caching() {
        let mut c = ResultCache::in_memory_with_limits(limits(0, usize::MAX));
        c.insert(key(0.5), sample_value());
        assert_eq!(c.stats().entries, 0);
        assert_eq!(c.lookup(&key(0.5)).1, CacheOutcome::Miss);
    }

    #[test]
    fn oversized_file_is_trimmed_at_load_and_eviction_is_crash_safe() {
        let path = temp("trim");
        {
            let mut c = ResultCache::open(&path);
            for period in 1..=6usize {
                let mut k = key(0.5);
                k.period = period;
                c.insert(k, sample_value());
            }
        }
        // Reopen under a tighter bound: trimmed immediately, and the
        // trimmed file is republished atomically.
        let c = ResultCache::open_with_limits(&path, limits(2, usize::MAX));
        assert_eq!(c.stats().entries, 2);
        assert_eq!(c.stats().evictions, 4);
        drop(c);
        // Simulate kill -9 at every byte of the post-evict publish: the
        // surviving file is always a loadable prefix within the bound.
        let bytes = std::fs::read(&path).unwrap();
        for cut in 0..bytes.len() {
            std::fs::write(&path, &bytes[..cut]).unwrap();
            let c = ResultCache::open_with_limits(&path, limits(2, usize::MAX));
            assert!(c.stats().entries <= 2, "cut {cut}");
        }
        std::fs::remove_file(path).ok();
    }
}
