//! A deterministic chaos proxy for torturing the wire path.
//!
//! [`ChaosProxy`] sits between a client and a daemon and misbehaves on
//! purpose: it delays responses, truncates them mid-frame, corrupts
//! their payload bytes, duplicates them, and severs connections before
//! or midway through an answer. Every decision comes from a seeded
//! counter-keyed generator — the same seed and connection order replay
//! the exact same faults, so a soak failure is reproducible by rerunning
//! with the seed it printed.
//!
//! The proxy disturbs only the *response* path. Requests are forwarded
//! verbatim: the point is to prove the client's retry/failover machinery
//! survives a hostile network, and a mangled request would test the
//! daemon instead (the wire-fuzz tests do that directly).

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Tuning for the proxy's misbehavior.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Seed for the deterministic fault schedule.
    pub seed: u64,
    /// Percent of connections disturbed (0–100); the rest pass through.
    pub fault_percent: u8,
    /// How long a `delay` fault stalls the response (ms).
    pub delay_ms: u64,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 0xC4405,
            fault_percent: 60,
            delay_ms: 100,
        }
    }
}

/// The faults the proxy can inject on one connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosFault {
    /// Forward everything untouched.
    Passthrough,
    /// Stall before forwarding the response.
    Delay,
    /// Forward only the first half of the response frame, then close.
    Truncate,
    /// Flip bytes inside the response payload (valid length, garbage
    /// JSON).
    Corrupt,
    /// Forward the response twice.
    Duplicate,
    /// Close the connection without forwarding any response at all.
    Sever,
}

impl ChaosFault {
    /// The stable lowercase name used in marks and logs.
    pub fn name(self) -> &'static str {
        match self {
            ChaosFault::Passthrough => "passthrough",
            ChaosFault::Delay => "delay",
            ChaosFault::Truncate => "truncate",
            ChaosFault::Corrupt => "corrupt",
            ChaosFault::Duplicate => "duplicate",
            ChaosFault::Sever => "sever",
        }
    }
}

/// The deterministic fault for connection number `index` under `config`.
/// Exposed so tests can predict (and assert) the schedule.
pub fn fault_for(config: &ChaosConfig, index: u64) -> ChaosFault {
    // splitmix64: counter-keyed draws stay well mixed even though the
    // inputs (seed + connection index) form an arithmetic progression —
    // a plain LCG over such inputs visibly biases the `% 5` below.
    fn mix(mut z: u64) -> u64 {
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    let mut state = config
        .seed
        .wrapping_add(index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        mix(state)
    };
    if next() % 100 >= config.fault_percent as u64 {
        return ChaosFault::Passthrough;
    }
    match next() % 5 {
        0 => ChaosFault::Delay,
        1 => ChaosFault::Truncate,
        2 => ChaosFault::Corrupt,
        3 => ChaosFault::Duplicate,
        _ => ChaosFault::Sever,
    }
}

/// The proxy. Bind, learn the local address, then [`run`](Self::run) it
/// (usually on its own thread); flip the stop handle to wind it down.
pub struct ChaosProxy {
    listener: TcpListener,
    local: SocketAddr,
    upstream: String,
    config: ChaosConfig,
    stop: Arc<AtomicBool>,
    conns: Arc<AtomicU64>,
}

impl ChaosProxy {
    /// Binds `127.0.0.1:0` (or the given listen address) in front of the
    /// TCP upstream `upstream`.
    pub fn bind(listen: &str, upstream: &str, config: ChaosConfig) -> io::Result<ChaosProxy> {
        let listener = TcpListener::bind(listen)?;
        let local = listener.local_addr()?;
        Ok(ChaosProxy {
            listener,
            local,
            upstream: upstream.to_owned(),
            config,
            stop: Arc::new(AtomicBool::new(false)),
            conns: Arc::new(AtomicU64::new(0)),
        })
    }

    /// The address clients should connect to.
    pub fn local_addr(&self) -> SocketAddr {
        self.local
    }

    /// Store `true` to make [`run`](Self::run) return.
    pub fn stop_handle(&self) -> Arc<AtomicBool> {
        self.stop.clone()
    }

    /// Total connections proxied so far.
    pub fn connections(&self) -> u64 {
        self.conns.load(Ordering::Relaxed)
    }

    /// Accepts and proxies until stopped. Each connection gets its own
    /// thread and its own deterministic fault.
    pub fn run(&self) -> io::Result<()> {
        self.listener.set_nonblocking(true)?;
        std::thread::scope(|scope| loop {
            if self.stop.load(Ordering::SeqCst) {
                break;
            }
            match self.listener.accept() {
                Ok((client, _)) => {
                    let index = self.conns.fetch_add(1, Ordering::Relaxed);
                    let fault = fault_for(&self.config, index);
                    ppm_observe::mark("chaos.conn", || format!("conn {index}: {}", fault.name()));
                    let upstream = self.upstream.clone();
                    let delay = self.config.delay_ms;
                    scope.spawn(move || {
                        let _ = proxy_conn(client, &upstream, fault, delay);
                    });
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(2)),
            }
        });
        Ok(())
    }
}

impl std::fmt::Debug for ChaosProxy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChaosProxy")
            .field("local", &self.local)
            .field("upstream", &self.upstream)
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

/// Reads one raw length-prefixed frame (header + payload bytes).
/// `Ok(None)` on clean EOF before the first byte.
fn read_raw_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut header = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut header[filled..])? {
            0 if filled == 0 => return Ok(None),
            0 => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "closed mid-header",
                ))
            }
            n => filled += n,
        }
    }
    let len = u32::from_le_bytes(header) as usize;
    if len > crate::protocol::MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "oversized frame through proxy",
        ));
    }
    let mut frame = vec![0u8; 4 + len];
    frame[..4].copy_from_slice(&header);
    r.read_exact(&mut frame[4..])?;
    Ok(Some(frame))
}

/// Proxies one connection: forward each request verbatim, disturb the
/// response per the fault.
fn proxy_conn(
    mut client: TcpStream,
    upstream: &str,
    fault: ChaosFault,
    delay_ms: u64,
) -> io::Result<()> {
    let timeout = Some(Duration::from_secs(10));
    client.set_read_timeout(timeout)?;
    client.set_write_timeout(timeout)?;
    let mut up = TcpStream::connect(upstream)?;
    up.set_read_timeout(timeout)?;
    up.set_write_timeout(timeout)?;
    loop {
        let Some(req) = read_raw_frame(&mut client)? else {
            return Ok(());
        };
        up.write_all(&req)?;
        up.flush()?;
        let Some(resp) = read_raw_frame(&mut up)? else {
            return Ok(());
        };
        match fault {
            ChaosFault::Passthrough => {
                client.write_all(&resp)?;
            }
            ChaosFault::Delay => {
                std::thread::sleep(Duration::from_millis(delay_ms));
                client.write_all(&resp)?;
            }
            ChaosFault::Truncate => {
                // Half the frame, then a hard close: the client sees a
                // clean header and a payload that ends mid-JSON.
                client.write_all(&resp[..resp.len() / 2])?;
                client.flush()?;
                return Ok(());
            }
            ChaosFault::Corrupt => {
                let mut bad = resp.clone();
                // Stomp payload bytes with invalid UTF-8 — the length
                // stays honest so the framer accepts the frame, and the
                // damage is *guaranteed* to be caught at the UTF-8/JSON
                // layer. (A bit flip that lands inside a string literal
                // can yield valid JSON with silently different data —
                // undetectable without an end-to-end checksum, and not
                // what this fault is for.)
                let start = 4 + (bad.len() - 4) / 3;
                for b in bad.iter_mut().skip(start).take(8) {
                    *b = 0xFF;
                }
                client.write_all(&bad)?;
            }
            ChaosFault::Duplicate => {
                client.write_all(&resp)?;
                client.write_all(&resp)?;
            }
            ChaosFault::Sever => {
                // Swallow the response entirely and drop the connection.
                return Ok(());
            }
        }
        client.flush()?;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_deterministic_and_seed_sensitive() {
        let config = ChaosConfig {
            seed: 1234,
            fault_percent: 100,
            delay_ms: 1,
        };
        let a: Vec<ChaosFault> = (0..32).map(|i| fault_for(&config, i)).collect();
        let b: Vec<ChaosFault> = (0..32).map(|i| fault_for(&config, i)).collect();
        assert_eq!(a, b, "same seed, same schedule");
        let other = ChaosConfig {
            seed: 4321,
            ..config.clone()
        };
        let c: Vec<ChaosFault> = (0..32).map(|i| fault_for(&other, i)).collect();
        assert_ne!(a, c, "different seed, different schedule");
        // At 100% every connection is disturbed.
        assert!(a.iter().all(|f| *f != ChaosFault::Passthrough));
        // And the generator visits every fault kind over 32 connections.
        for want in [
            ChaosFault::Delay,
            ChaosFault::Truncate,
            ChaosFault::Corrupt,
            ChaosFault::Duplicate,
            ChaosFault::Sever,
        ] {
            assert!(a.contains(&want), "schedule never picked {want:?}");
        }
    }

    #[test]
    fn zero_percent_is_all_passthrough() {
        let config = ChaosConfig {
            seed: 9,
            fault_percent: 0,
            delay_ms: 1,
        };
        assert!((0..64).all(|i| fault_for(&config, i) == ChaosFault::Passthrough));
    }
}
