//! The daemon: admission control, worker pool, panic isolation, graceful
//! drain.
//!
//! ## Life of a query
//!
//! The accept loop (non-blocking, polling the shutdown flag) admits each
//! connection into a bounded queue. A full queue sheds the connection
//! with an explicit `overload` frame carrying a retry hint — the client
//! is told, never hung up on silently. Workers pop connections, read one
//! request frame at a time, and dispatch it under `catch_unwind`: a
//! panicking query produces a structured `error` response and a bumped
//! `panics` counter while the worker (and daemon) keep serving.
//!
//! ## Lifecycle
//!
//! SIGTERM/SIGINT (or the `shutdown` op) flip the stop flag. The accept
//! loop closes admissions; workers drain the queued connections under the
//! configured drain deadline, then exit; the result cache is flushed one
//! final time and the Unix socket file (if any) removed. `kill -9` is the
//! crash path the cache's checksummed entries and the columnar store's
//! atomic publishes are built for.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use ppm_core::{Algorithm, MineConfig, MiningResult, Pattern};
use ppm_observe::Json;
use ppm_timeseries::{
    Fault, FaultInjectingSource, FaultPlan, FeatureCatalog, MemorySource, QuarantineMode,
    QuarantiningSource, SeriesBuilder, SeriesSource,
};

use crate::cache::{CacheKey, CacheOutcome, CachedResult, CachedRow, ResultCache};
use crate::error::ErrorCode;
use crate::protocol::{
    self, error_response, overload_response, req_f64, req_str, req_u64, result_response,
};
use crate::signal;
use crate::store::StoreRegistry;

/// Where the daemon listens.
#[derive(Debug, Clone)]
pub enum Bind {
    /// A TCP address, e.g. `127.0.0.1:7070` (port `0` picks one).
    Tcp(String),
    /// A Unix-domain socket path.
    Unix(PathBuf),
}

/// The address actually bound (TCP reports the resolved port).
#[derive(Debug, Clone)]
pub enum BoundAddr {
    /// Bound TCP socket address.
    Tcp(SocketAddr),
    /// Bound Unix socket path.
    Unix(PathBuf),
}

impl std::fmt::Display for BoundAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BoundAddr::Tcp(a) => write!(f, "tcp {a}"),
            BoundAddr::Unix(p) => write!(f, "unix {}", p.display()),
        }
    }
}

/// Daemon tuning. Every field has a safe default; construct with
/// [`ServeConfig::new`] and override as needed.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address.
    pub bind: Bind,
    /// Worker threads handling queries.
    pub workers: usize,
    /// Admission-queue capacity; connections beyond it are shed.
    pub queue_cap: usize,
    /// Result-cache file; `None` keeps the cache in memory only.
    pub cache_path: Option<PathBuf>,
    /// Default per-query deadline (ms) when the request names none.
    pub default_deadline_ms: Option<u64>,
    /// Default per-query tree budget when the request names none.
    pub default_max_tree_nodes: Option<usize>,
    /// How long workers may keep draining after shutdown is requested.
    pub drain_ms: u64,
    /// The backoff hint stamped on overload responses.
    pub retry_after_ms: u64,
    /// Enables the fault-injection surface (`panic` op, `inject_garbage`)
    /// for tests and soaks; production daemons leave it off.
    pub test_faults: bool,
}

impl ServeConfig {
    /// A config with defaults for everything but the bind address.
    pub fn new(bind: Bind) -> Self {
        ServeConfig {
            bind,
            workers: 4,
            queue_cap: 16,
            cache_path: None,
            default_deadline_ms: None,
            default_max_tree_nodes: None,
            drain_ms: 5_000,
            retry_after_ms: 100,
            test_faults: false,
        }
    }
}

/// Daemon-level counters exposed through the `stats` op and mirrored to
/// `ppm-observe` gauges.
#[derive(Debug, Default)]
struct Gauges {
    queue_depth: AtomicU64,
    shed: AtomicU64,
    served: AtomicU64,
    panics: AtomicU64,
}

enum Listener {
    Tcp(TcpListener),
    Unix(UnixListener),
}

enum Conn {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Conn {
    /// Blocking mode with bounded timeouts: a stalled peer costs a worker
    /// at most the timeout, never a hang.
    fn configure(&self) -> io::Result<()> {
        let t = Some(Duration::from_secs(2));
        match self {
            Conn::Tcp(s) => {
                s.set_nonblocking(false)?;
                s.set_read_timeout(t)?;
                s.set_write_timeout(t)
            }
            Conn::Unix(s) => {
                s.set_nonblocking(false)?;
                s.set_read_timeout(t)?;
                s.set_write_timeout(t)
            }
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            Conn::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            Conn::Unix(s) => s.flush(),
        }
    }
}

/// The admission queue shared between the accept loop and the workers.
struct Queue {
    conns: Mutex<VecDeque<Conn>>,
    ready: Condvar,
    stop: AtomicBool,
    drain_until: Mutex<Option<Instant>>,
}

/// The daemon. [`Server::bind`] opens the socket (so the caller can learn
/// the resolved port before serving); [`Server::run`] blocks until
/// shutdown completes.
pub struct Server {
    listener: Listener,
    bound: BoundAddr,
    registry: StoreRegistry,
    config: ServeConfig,
    cache: Mutex<ResultCache>,
    gauges: Gauges,
    stop: Arc<AtomicBool>,
}

impl Server {
    /// Binds the listen socket and loads (or initializes) the result
    /// cache.
    pub fn bind(registry: StoreRegistry, config: ServeConfig) -> io::Result<Server> {
        let (listener, bound) = match &config.bind {
            Bind::Tcp(addr) => {
                let l = TcpListener::bind(addr.as_str())?;
                let a = l.local_addr()?;
                (Listener::Tcp(l), BoundAddr::Tcp(a))
            }
            Bind::Unix(path) => {
                // The daemon owns its socket path; a stale file from a
                // previous crash would otherwise block the bind forever.
                std::fs::remove_file(path).ok();
                let l = UnixListener::bind(path)?;
                (Listener::Unix(l), BoundAddr::Unix(path.clone()))
            }
        };
        let cache = match &config.cache_path {
            Some(p) => ResultCache::open(p),
            None => ResultCache::in_memory(),
        };
        Ok(Server {
            listener,
            bound,
            registry,
            config,
            cache: Mutex::new(cache),
            gauges: Gauges::default(),
            stop: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The address actually bound.
    pub fn local_addr(&self) -> &BoundAddr {
        &self.bound
    }

    /// The stores this daemon serves.
    pub fn registry(&self) -> &StoreRegistry {
        &self.registry
    }

    /// A handle that requests shutdown when stored `true` (tests use this
    /// in place of a signal).
    pub fn stop_handle(&self) -> Arc<AtomicBool> {
        self.stop.clone()
    }

    /// Number of cache entries recovered at startup (for the "warm cache"
    /// banner).
    pub fn warm_cache_entries(&self) -> usize {
        self.cache.lock().expect("cache poisoned").stats().entries
    }

    fn shutting_down(&self) -> bool {
        self.stop.load(Ordering::SeqCst) || signal::requested()
    }

    /// Serves until shutdown, then drains, flushes the cache, and returns.
    pub fn run(self) -> io::Result<()> {
        match &self.listener {
            Listener::Tcp(l) => l.set_nonblocking(true)?,
            Listener::Unix(l) => l.set_nonblocking(true)?,
        }
        let queue = Queue {
            conns: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            stop: AtomicBool::new(false),
            drain_until: Mutex::new(None),
        };
        let obs = ppm_observe::current();

        std::thread::scope(|scope| {
            for _ in 0..self.config.workers.max(1) {
                let obs = obs.clone();
                let queue = &queue;
                let server = &self;
                scope.spawn(move || {
                    let _g = ppm_observe::attach(obs);
                    server.worker_loop(queue);
                });
            }

            // Accept loop: poll-accept so the shutdown flag is observed
            // within one tick even with no traffic.
            loop {
                if self.shutting_down() {
                    break;
                }
                let accepted = match &self.listener {
                    Listener::Tcp(l) => l.accept().map(|(s, _)| Conn::Tcp(s)),
                    Listener::Unix(l) => l.accept().map(|(s, _)| Conn::Unix(s)),
                };
                match accepted {
                    Ok(conn) => self.admit(conn, &queue),
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => std::thread::sleep(Duration::from_millis(5)),
                }
            }

            // Drain: no new admissions; workers finish the queue under the
            // deadline, then exit.
            *queue.drain_until.lock().expect("drain poisoned") =
                Some(Instant::now() + Duration::from_millis(self.config.drain_ms));
            queue.stop.store(true, Ordering::SeqCst);
            queue.ready.notify_all();
        });

        self.cache.lock().expect("cache poisoned").flush();
        if let BoundAddr::Unix(path) = &self.bound {
            std::fs::remove_file(path).ok();
        }
        ppm_observe::mark("serve.stopped", || {
            format!(
                "served {} queries, shed {}, {} panics contained",
                self.gauges.served.load(Ordering::Relaxed),
                self.gauges.shed.load(Ordering::Relaxed),
                self.gauges.panics.load(Ordering::Relaxed)
            )
        });
        Ok(())
    }

    /// Admission control: into the bounded queue, or shed with an
    /// explicit overload frame.
    fn admit(&self, conn: Conn, queue: &Queue) {
        if conn.configure().is_err() {
            return;
        }
        let mut conns = queue.conns.lock().expect("queue poisoned");
        if conns.len() >= self.config.queue_cap {
            drop(conns);
            self.gauges.shed.fetch_add(1, Ordering::Relaxed);
            ppm_observe::counter("serve.shed", 1);
            let mut conn = conn;
            let _ =
                protocol::write_frame(&mut conn, &overload_response(self.config.retry_after_ms));
            return;
        }
        conns.push_back(conn);
        let depth = conns.len() as u64;
        drop(conns);
        self.gauges.queue_depth.store(depth, Ordering::Relaxed);
        ppm_observe::gauge("serve.queue_depth", depth);
        queue.ready.notify_one();
    }

    /// One worker: pop connections until the queue closes (or the drain
    /// deadline expires), serving every frame on each.
    fn worker_loop(&self, queue: &Queue) {
        loop {
            let conn = {
                let mut conns = queue.conns.lock().expect("queue poisoned");
                loop {
                    let stopping = queue.stop.load(Ordering::SeqCst);
                    if stopping {
                        let expired = queue
                            .drain_until
                            .lock()
                            .expect("drain poisoned")
                            .is_some_and(|d| Instant::now() >= d);
                        if expired {
                            break None;
                        }
                    }
                    if let Some(c) = conns.pop_front() {
                        self.gauges
                            .queue_depth
                            .store(conns.len() as u64, Ordering::Relaxed);
                        break Some(c);
                    }
                    if stopping {
                        break None;
                    }
                    let (guard, _) = queue
                        .ready
                        .wait_timeout(conns, Duration::from_millis(50))
                        .expect("queue poisoned");
                    conns = guard;
                }
            };
            match conn {
                Some(c) => self.serve_conn(c),
                None => break,
            }
        }
    }

    /// Serves every frame on one connection; a panic inside dispatch is
    /// contained to an error response.
    fn serve_conn(&self, mut conn: Conn) {
        loop {
            let req = match protocol::read_frame(&mut conn) {
                Ok(Some(req)) => req,
                Ok(None) | Err(_) => return,
            };
            let _span = ppm_observe::span("serve.request");
            let resp = match catch_unwind(AssertUnwindSafe(|| self.dispatch(&req))) {
                Ok(resp) => resp,
                Err(payload) => {
                    self.gauges.panics.fetch_add(1, Ordering::Relaxed);
                    ppm_observe::counter("serve.panics", 1);
                    let what = panic_message(&payload);
                    error_response(
                        ErrorCode::Internal,
                        format!("query panicked ({what}); the daemon is still serving"),
                        Vec::new(),
                    )
                }
            };
            self.gauges.served.fetch_add(1, Ordering::Relaxed);
            if protocol::write_frame(&mut conn, &resp).is_err() {
                return;
            }
            if self.shutting_down() {
                return;
            }
        }
    }

    /// Validates the envelope and routes to the op handler; every failure
    /// becomes a typed error response.
    fn dispatch(&self, req: &Json) -> Json {
        match req.get("v").and_then(Json::as_u64) {
            Some(protocol::VERSION) => {}
            other => {
                return error_response(
                    ErrorCode::Usage,
                    format!(
                        "unsupported protocol version {other:?}; this daemon speaks v{}",
                        protocol::VERSION
                    ),
                    Vec::new(),
                )
            }
        }
        let op = match req.get("op").and_then(Json::as_str) {
            Some(op) => op,
            None => {
                return error_response(
                    ErrorCode::Usage,
                    "request has no \"op\" field".into(),
                    Vec::new(),
                )
            }
        };
        let outcome = match op {
            "mine" => self.op_mine(req),
            "rules" => self.op_rules(req),
            "verify" => self.op_verify(req),
            "info" => self.op_info(req),
            "stats" => Ok(self.op_stats()),
            "shutdown" => {
                self.stop.store(true, Ordering::SeqCst);
                Ok(result_response(
                    "shutdown",
                    vec![("draining".to_owned(), Json::Bool(true))],
                ))
            }
            "panic" if self.config.test_faults => panic!("injected test panic"),
            other => Err(OpError::usage(format!(
                "unknown op {other:?} (mine|rules|verify|info|stats|shutdown)"
            ))),
        };
        match outcome {
            Ok(resp) => resp,
            Err(e) => error_response(e.code, e.message, e.extras),
        }
    }

    fn op_mine(&self, req: &Json) -> Result<Json, OpError> {
        let q = MineQuery::parse(req, &self.config)?;
        let store = self
            .registry
            .get(&q.store)
            .ok_or_else(|| OpError::usage(format!("unknown store {:?}", q.store)))?;

        if q.quarantine {
            return self.mine_quarantined(store, &q);
        }

        let key = CacheKey {
            fingerprint: store.fingerprint(),
            period: q.period,
            conf_bits: q.min_conf.to_bits(),
            engine: q.engine.clone(),
        };
        if !q.no_cache {
            let (cached, outcome) = self.cache.lock().expect("cache poisoned").lookup(&key);
            if let Some(c) = cached {
                let label = match outcome {
                    CacheOutcome::Hit => "hit",
                    CacheOutcome::Derived => "derived",
                    CacheOutcome::Miss => unreachable!("lookup returned a value"),
                };
                ppm_observe::counter("serve.cache.answers", 1);
                return Ok(mine_response(&q, &c, label, None));
            }
        }

        let _span = ppm_observe::span("serve.mine");
        let view = store.view();
        let mined = match q.engine.as_str() {
            "apriori" => ppm_core::apriori::mine_view(view, q.period, &q.config),
            "vertical" => ppm_core::vertical::mine_vertical_view(view, q.period, &q.config),
            _ => ppm_core::hitset::mine_view(view, q.period, &q.config),
        };
        let result = mined.map_err(OpError::from_mining)?;
        let cached = to_cached(&result, store.reader.catalog());
        if !q.no_cache {
            let mut cache = self.cache.lock().expect("cache poisoned");
            cache.insert(key, cached.clone());
        }
        Ok(mine_response(&q, &cached, "miss", None))
    }

    /// The quarantine path: materialize, clean (optionally injecting
    /// garbage when the fault surface is enabled), mine the cleaned
    /// series. Never cached — the cleaned series is not the store.
    fn mine_quarantined(
        &self,
        store: &crate::store::Store,
        q: &MineQuery,
    ) -> Result<Json, OpError> {
        if q.inject_garbage.is_some() && !self.config.test_faults {
            return Err(OpError::usage(
                "inject_garbage requires the daemon to run with --test-faults".into(),
            ));
        }
        let series = store.reader.to_series();
        let mem = MemorySource::new(&series);
        let mut faulty;
        let mut plain;
        let source: &mut dyn SeriesSource = match q.inject_garbage {
            Some(t) => {
                let mut plan = FaultPlan::new();
                for attempt in 0..32 {
                    plan = plan.fail_scan(attempt, Fault::Garbage { instant: t });
                }
                faulty = FaultInjectingSource::new(mem, plan);
                &mut faulty
            }
            None => {
                plain = mem;
                &mut plain
            }
        };
        let mut qsrc = QuarantiningSource::new(source, QuarantineMode::Quarantine);
        let mut builder = SeriesBuilder::new();
        qsrc.scan(&mut |_, feats| builder.push_instant(feats.iter().copied()))
            .map_err(|e| OpError::internal(format!("quarantine scan failed: {e}")))?;
        let (_, report) = qsrc.into_parts();
        let cleaned = builder.finish();

        let mined = match q.engine.as_str() {
            "apriori" => ppm_core::mine(&cleaned, q.period, &q.config, Algorithm::Apriori),
            "vertical" => ppm_core::vertical::mine_vertical(&cleaned, q.period, &q.config),
            _ => ppm_core::mine(&cleaned, q.period, &q.config, Algorithm::HitSet),
        };
        let result = mined.map_err(OpError::from_mining)?;
        let cached = to_cached(&result, store.reader.catalog());
        Ok(mine_response(q, &cached, "bypass", Some(report.len())))
    }

    fn op_rules(&self, req: &Json) -> Result<Json, OpError> {
        let q = MineQuery::parse(req, &self.config)?;
        let store = self
            .registry
            .get(&q.store)
            .ok_or_else(|| OpError::usage(format!("unknown store {:?}", q.store)))?;
        let min_rule_conf = req
            .get("min_rule_conf")
            .and_then(Json::as_f64)
            .unwrap_or(0.8);
        let _span = ppm_observe::span("serve.rules");
        let result = ppm_core::hitset::mine_view(store.view(), q.period, &q.config)
            .map_err(OpError::from_mining)?;
        let rules = ppm_core::rules::generate_rules(&result, min_rule_conf);
        let rows: Vec<Json> = rules
            .iter()
            .take(q.limit)
            .map(|r| Json::Str(r.display(&result, store.reader.catalog())))
            .collect();
        Ok(result_response(
            "rules",
            vec![
                ("store".to_owned(), Json::Str(q.store.clone())),
                ("period".to_owned(), Json::from_usize(q.period)),
                ("min_rule_conf".to_owned(), Json::Num(min_rule_conf)),
                ("n_rules".to_owned(), Json::from_usize(rules.len())),
                ("n_frequent".to_owned(), Json::from_usize(result.len())),
                ("rows".to_owned(), Json::Arr(rows)),
            ],
        ))
    }

    fn op_verify(&self, req: &Json) -> Result<Json, OpError> {
        let q = MineQuery::parse(req, &self.config)?;
        let store = self
            .registry
            .get(&q.store)
            .ok_or_else(|| OpError::usage(format!("unknown store {:?}", q.store)))?;
        let _span = ppm_observe::span("serve.verify");
        let check = ppm_core::audit::cross_check_view(
            store.view(),
            q.period,
            &q.config,
            store.reader.catalog(),
        )
        .map_err(OpError::from_mining)?;
        let agreed = check.agreed();
        let violations: Vec<Json> = check
            .report
            .violations
            .iter()
            .map(|v| Json::Str(v.to_string()))
            .collect();
        Ok(result_response(
            "verify",
            vec![
                ("store".to_owned(), Json::Str(q.store.clone())),
                ("period".to_owned(), Json::from_usize(q.period)),
                (
                    "engines".to_owned(),
                    Json::from_usize(check.algorithms.len()),
                ),
                ("compared".to_owned(), Json::from_usize(check.compared)),
                ("agreed".to_owned(), Json::Bool(agreed)),
                ("violations".to_owned(), Json::Arr(violations)),
            ],
        ))
    }

    fn op_info(&self, req: &Json) -> Result<Json, OpError> {
        let filter = req.get("store").and_then(Json::as_str);
        let mut stores = Vec::new();
        for s in self.registry.iter() {
            if filter.is_some_and(|f| f != s.name) {
                continue;
            }
            stores.push(Json::Obj(vec![
                ("name".to_owned(), Json::Str(s.name.clone())),
                ("instants".to_owned(), Json::from_usize(s.reader.len())),
                ("width".to_owned(), Json::from_usize(s.reader.width())),
                (
                    "features".to_owned(),
                    Json::from_usize(s.reader.catalog().len()),
                ),
                (
                    "file_bytes".to_owned(),
                    Json::from_usize(s.reader.file_bytes()),
                ),
                (
                    "fingerprint".to_owned(),
                    Json::Str(format!("{:016x}", s.fingerprint())),
                ),
            ]));
        }
        if let Some(name) = filter {
            if stores.is_empty() {
                return Err(OpError::usage(format!("unknown store {name:?}")));
            }
        }
        Ok(result_response(
            "info",
            vec![("stores".to_owned(), Json::Arr(stores))],
        ))
    }

    fn op_stats(&self) -> Json {
        let cache = self.cache.lock().expect("cache poisoned").stats();
        result_response(
            "stats",
            vec![
                (
                    "queue_depth".to_owned(),
                    Json::from_u64(self.gauges.queue_depth.load(Ordering::Relaxed)),
                ),
                (
                    "shed".to_owned(),
                    Json::from_u64(self.gauges.shed.load(Ordering::Relaxed)),
                ),
                (
                    "served".to_owned(),
                    Json::from_u64(self.gauges.served.load(Ordering::Relaxed)),
                ),
                (
                    "panics".to_owned(),
                    Json::from_u64(self.gauges.panics.load(Ordering::Relaxed)),
                ),
                ("stores".to_owned(), Json::from_usize(self.registry.len())),
                (
                    "cache".to_owned(),
                    Json::Obj(vec![
                        ("entries".to_owned(), Json::from_usize(cache.entries)),
                        ("hits".to_owned(), Json::from_u64(cache.hits)),
                        ("derived".to_owned(), Json::from_u64(cache.derived)),
                        ("misses".to_owned(), Json::from_u64(cache.misses)),
                        ("rejected".to_owned(), Json::from_u64(cache.rejected)),
                    ]),
                ),
            ],
        )
    }
}

/// What the common query ops parse out of a request.
struct MineQuery {
    store: String,
    period: usize,
    min_conf: f64,
    engine: String,
    limit: usize,
    config: MineConfig,
    quarantine: bool,
    inject_garbage: Option<usize>,
    no_cache: bool,
}

impl MineQuery {
    fn parse(req: &Json, server: &ServeConfig) -> Result<MineQuery, OpError> {
        let store = req_str(req, "store").map_err(OpError::usage)?.to_owned();
        let period = req_u64(req, "period").map_err(OpError::usage)? as usize;
        if period == 0 {
            return Err(OpError::usage("period must be at least 1".into()));
        }
        let min_conf = req_f64(req, "min_conf").map_err(OpError::usage)?;
        let engine = req
            .get("engine")
            .and_then(Json::as_str)
            .unwrap_or("hitset")
            .to_owned();
        if !matches!(engine.as_str(), "hitset" | "apriori" | "vertical") {
            return Err(OpError::usage(format!(
                "engine {engine:?} is not servable (hitset|apriori|vertical)"
            )));
        }
        let limit = req.get("limit").and_then(Json::as_u64).unwrap_or(20) as usize;
        let mut config =
            MineConfig::new(min_conf).map_err(|e| OpError::usage(format!("bad min_conf: {e}")))?;
        let deadline_ms = req
            .get("deadline_ms")
            .and_then(Json::as_u64)
            .or(server.default_deadline_ms);
        if let Some(ms) = deadline_ms {
            config = config.with_deadline(Duration::from_millis(ms));
        }
        let max_tree_nodes = req
            .get("max_tree_nodes")
            .and_then(Json::as_u64)
            .map(|n| n as usize)
            .or(server.default_max_tree_nodes);
        if let Some(n) = max_tree_nodes {
            config = config.with_max_tree_nodes(n);
        }
        Ok(MineQuery {
            store,
            period,
            min_conf,
            engine,
            limit,
            config,
            quarantine: matches!(req.get("quarantine"), Some(Json::Bool(true))),
            inject_garbage: req
                .get("inject_garbage")
                .and_then(Json::as_u64)
                .map(|t| t as usize),
            no_cache: matches!(req.get("no_cache"), Some(Json::Bool(true))),
        })
    }
}

/// A typed op failure on its way to an `error` frame.
struct OpError {
    code: ErrorCode,
    message: String,
    extras: Vec<(String, Json)>,
}

impl OpError {
    fn usage(message: String) -> OpError {
        OpError {
            code: ErrorCode::Usage,
            message,
            extras: Vec::new(),
        }
    }

    fn internal(message: String) -> OpError {
        OpError {
            code: ErrorCode::Internal,
            message,
            extras: Vec::new(),
        }
    }

    /// Maps a mining failure onto the taxonomy: guard trips carry their
    /// partial stats (code 3), transient exhaustion is code 5, the rest
    /// is internal.
    fn from_mining(e: ppm_core::Error) -> OpError {
        if let Some(stats) = e.partial_stats() {
            return OpError {
                code: ErrorCode::PartialResult,
                message: format!("mining aborted: {e}"),
                extras: vec![(
                    "partial_stats".to_owned(),
                    Json::Obj(vec![
                        (
                            "series_scans".to_owned(),
                            Json::from_usize(stats.series_scans),
                        ),
                        ("tree_nodes".to_owned(), Json::from_usize(stats.tree_nodes)),
                        (
                            "hit_insertions".to_owned(),
                            Json::from_u64(stats.hit_insertions),
                        ),
                    ]),
                )],
            };
        }
        if e.is_transient() {
            return OpError {
                code: ErrorCode::RetriesExhausted,
                message: format!("transient failure survived retries: {e}"),
                extras: Vec::new(),
            };
        }
        OpError::internal(format!("mining error: {e}"))
    }
}

/// Converts a mined result into canonical cached rows (report order).
fn to_cached(result: &MiningResult, catalog: &FeatureCatalog) -> CachedResult {
    let mut rows: Vec<&ppm_core::FrequentPattern> = result.frequent.iter().collect();
    rows.sort_by(|a, b| {
        b.letters
            .len()
            .cmp(&a.letters.len())
            .then(b.count.cmp(&a.count))
    });
    CachedResult {
        segment_count: result.segment_count,
        scans: result.stats.series_scans,
        rows: rows
            .into_iter()
            .map(|fp| CachedRow {
                display: Pattern::from_letter_set(&result.alphabet, &fp.letters)
                    .display(catalog)
                    .to_string(),
                letters: fp.letters.len(),
                count: fp.count,
            })
            .collect(),
    }
}

/// Builds the `mine` result frame: totals plus up to `limit` rows.
fn mine_response(
    q: &MineQuery,
    c: &CachedResult,
    cached: &str,
    quarantined: Option<usize>,
) -> Json {
    let rows: Vec<Json> = c
        .rows
        .iter()
        .take(q.limit)
        .map(|r| {
            Json::Arr(vec![
                Json::Str(r.display.clone()),
                Json::from_usize(r.letters),
                Json::from_u64(r.count),
            ])
        })
        .collect();
    let mut fields = vec![
        ("store".to_owned(), Json::Str(q.store.clone())),
        ("period".to_owned(), Json::from_usize(q.period)),
        ("min_conf".to_owned(), Json::Num(q.min_conf)),
        ("engine".to_owned(), Json::Str(q.engine.clone())),
        ("patterns".to_owned(), Json::from_usize(c.rows.len())),
        ("segments".to_owned(), Json::from_usize(c.segment_count)),
        ("scans".to_owned(), Json::from_usize(c.scans)),
        ("cached".to_owned(), Json::Str(cached.to_owned())),
        ("rows".to_owned(), Json::Arr(rows)),
    ];
    if let Some(n) = quarantined {
        fields.push(("quarantined".to_owned(), Json::from_usize(n)));
    }
    result_response("mine", fields)
}

/// Best-effort panic payload rendering for the error message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}
