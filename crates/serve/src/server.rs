//! The daemon: admission control, worker pool, panic isolation, graceful
//! drain.
//!
//! ## Life of a query
//!
//! The accept loop (non-blocking, polling the shutdown flag) admits each
//! connection into a bounded queue. A full queue sheds the connection
//! with an explicit `overload` frame carrying a retry hint — the client
//! is told, never hung up on silently. Workers pop connections, read one
//! request frame at a time, and dispatch it under `catch_unwind`: a
//! panicking query produces a structured `error` response and a bumped
//! `panics` counter while the worker (and daemon) keep serving.
//!
//! ## Lifecycle
//!
//! SIGTERM/SIGINT (or the `shutdown` op) flip the stop flag. The accept
//! loop closes admissions; workers drain the queued connections under the
//! configured drain deadline, then exit; the result cache is flushed one
//! final time and the Unix socket file (if any) removed. `kill -9` is the
//! crash path the cache's checksummed entries and the columnar store's
//! atomic publishes are built for.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use ppm_core::{Algorithm, MineConfig, MiningResult, Pattern};
use ppm_observe::{FlightKind, FlightRecorder, Json, NameId};
use ppm_timeseries::{
    Fault, FaultInjectingSource, FaultPlan, FeatureCatalog, MemorySource, QuarantineMode,
    QuarantiningSource, SeriesBuilder, SeriesSource,
};

use crate::cache::{CacheKey, CacheLimits, CacheOutcome, CachedResult, CachedRow, ResultCache};
use crate::error::ErrorCode;
use crate::metrics::{self, AccessLog, AccessRecord, PhaseCapture, ServeMetrics};
use crate::protocol::{
    self, error_response, overload_response, req_f64, req_str, req_u64, result_response,
};
use crate::signal;
use crate::store::StoreRegistry;

/// Where the daemon listens.
#[derive(Debug, Clone)]
pub enum Bind {
    /// A TCP address, e.g. `127.0.0.1:7070` (port `0` picks one).
    Tcp(String),
    /// A Unix-domain socket path.
    Unix(PathBuf),
}

/// The address actually bound (TCP reports the resolved port).
#[derive(Debug, Clone)]
pub enum BoundAddr {
    /// Bound TCP socket address.
    Tcp(SocketAddr),
    /// Bound Unix socket path.
    Unix(PathBuf),
}

impl std::fmt::Display for BoundAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BoundAddr::Tcp(a) => write!(f, "tcp {a}"),
            BoundAddr::Unix(p) => write!(f, "unix {}", p.display()),
        }
    }
}

/// Daemon tuning. Every field has a safe default; construct with
/// [`ServeConfig::new`] and override as needed.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address.
    pub bind: Bind,
    /// Worker threads handling queries.
    pub workers: usize,
    /// Admission-queue capacity; connections beyond it are shed.
    pub queue_cap: usize,
    /// Result-cache file; `None` keeps the cache in memory only.
    pub cache_path: Option<PathBuf>,
    /// Default per-query deadline (ms) when the request names none.
    pub default_deadline_ms: Option<u64>,
    /// Default per-query tree budget when the request names none.
    pub default_max_tree_nodes: Option<usize>,
    /// How long workers may keep draining after shutdown is requested.
    pub drain_ms: u64,
    /// The backoff hint stamped on overload responses.
    pub retry_after_ms: u64,
    /// Enables the fault-injection surface (`panic` op, `inject_garbage`)
    /// for tests and soaks; production daemons leave it off.
    pub test_faults: bool,
    /// Prometheus-style exposition file, rewritten atomically about once
    /// a second (and on shutdown); `None` disables the file (the
    /// `metrics` op serves the same text on demand either way).
    pub metrics_out: Option<PathBuf>,
    /// JSON-lines access log, one line per query; `None` disables it.
    pub access_log: Option<PathBuf>,
    /// Service-time threshold (ms) at or above which an access-log line
    /// carries full captured span detail; `None` disables slow logging.
    pub slow_ms: Option<u64>,
    /// Where flight-recorder dumps land (`SIGUSR1`, panic containment,
    /// overload shedding); `None` dumps to stderr.
    pub flight_path: Option<PathBuf>,
    /// Events the flight recorder retains per worker ring.
    pub flight_events: usize,
    /// How long a worker waits for the *next* frame on a kept-alive
    /// connection before reaping it (ms). Bounds the cost of idle peers.
    pub idle_timeout_ms: u64,
    /// Total budget for reading or writing one frame (ms), measured from
    /// its first byte. Bounds slow-loris drip-feeding and short-write
    /// stalls: a peer trickling one byte at a time costs a worker at most
    /// this long per frame, never a hang.
    pub frame_deadline_ms: u64,
    /// Requests served on one connection before it is politely closed, so
    /// a single chatty peer cannot monopolize a worker while others queue.
    pub max_requests_per_conn: u64,
    /// Store checksum re-verification interval (ms); 0 disables the
    /// periodic check (the `health` op's `recheck` still works).
    pub verify_interval_ms: u64,
    /// Result-cache growth bounds (entries and approximate bytes).
    pub cache_limits: CacheLimits,
}

impl ServeConfig {
    /// A config with defaults for everything but the bind address.
    pub fn new(bind: Bind) -> Self {
        ServeConfig {
            bind,
            workers: 4,
            queue_cap: 16,
            cache_path: None,
            default_deadline_ms: None,
            default_max_tree_nodes: None,
            drain_ms: 5_000,
            retry_after_ms: 100,
            test_faults: false,
            metrics_out: None,
            access_log: None,
            slow_ms: None,
            flight_path: None,
            flight_events: ppm_observe::flight::DEFAULT_RING_EVENTS,
            idle_timeout_ms: 2_000,
            frame_deadline_ms: 5_000,
            max_requests_per_conn: 256,
            verify_interval_ms: 30_000,
            cache_limits: CacheLimits::default(),
        }
    }
}

/// Pre-interned flight-recorder event names (interning takes a lock;
/// the hot path must not).
#[derive(Debug, Clone, Copy)]
struct FlightNames {
    request: NameId,
    shed: NameId,
    panic: NameId,
    queue_depth: NameId,
    queue_wait: NameId,
}

enum Listener {
    Tcp(TcpListener),
    Unix(UnixListener),
}

/// The raw accepted socket.
enum Stream {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Stream {
    fn set_nonblocking(&self, nb: bool) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_nonblocking(nb),
            Stream::Unix(s) => s.set_nonblocking(nb),
        }
    }

    fn set_read_timeout(&self, t: Option<Duration>) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_read_timeout(t),
            Stream::Unix(s) => s.set_read_timeout(t),
        }
    }

    fn set_write_timeout(&self, t: Option<Duration>) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_write_timeout(t),
            Stream::Unix(s) => s.set_write_timeout(t),
        }
    }
}

/// A hardened connection: every read and write is bounded by a phase
/// deadline, so no peer — idle, drip-feeding bytes (slow loris), or
/// stalling a short write — can hold a worker past its budget.
///
/// Two phases. *Idle*: waiting for the first byte of the next frame,
/// bounded by `idle_timeout`; expiry here is the idle reaper firing.
/// *In-frame*: from that first byte, the whole rest of the frame (and,
/// on the write side, the whole response) must land within
/// `frame_deadline` — the socket timeout is re-armed with the remaining
/// budget before every syscall, so trickling one byte per second buys a
/// peer nothing.
struct Conn {
    stream: Stream,
    idle_timeout: Duration,
    frame_deadline: Duration,
    deadline: Instant,
    idle: bool,
}

impl Conn {
    fn new(stream: Stream, config: &ServeConfig) -> io::Result<Conn> {
        stream.set_nonblocking(false)?;
        let idle_timeout = Duration::from_millis(config.idle_timeout_ms.max(1));
        let frame_deadline = Duration::from_millis(config.frame_deadline_ms.max(1));
        Ok(Conn {
            stream,
            idle_timeout,
            frame_deadline,
            deadline: Instant::now() + idle_timeout,
            idle: true,
        })
    }

    /// Arms the idle phase: the peer has `idle_timeout` to start the next
    /// frame; its first byte switches to the frame budget.
    fn arm_idle(&mut self) {
        self.idle = true;
        self.deadline = Instant::now() + self.idle_timeout;
    }

    /// Arms a whole-frame budget immediately (writes have no idle phase:
    /// the response starts now).
    fn arm_frame(&mut self) {
        self.idle = false;
        self.deadline = Instant::now() + self.frame_deadline;
    }

    /// Whether the connection was still between frames when I/O failed
    /// (distinguishes a reaped idle peer from a mid-frame stall).
    fn was_idle(&self) -> bool {
        self.idle
    }

    /// Time left in the current phase, or `TimedOut` once it is spent.
    fn remaining(&self) -> io::Result<Duration> {
        self.deadline
            .checked_duration_since(Instant::now())
            .filter(|d| !d.is_zero())
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::TimedOut,
                    if self.idle {
                        "idle timeout"
                    } else {
                        "frame deadline exceeded"
                    },
                )
            })
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let left = self.remaining()?;
        self.stream.set_read_timeout(Some(left))?;
        let n = match &mut self.stream {
            Stream::Tcp(s) => s.read(buf)?,
            Stream::Unix(s) => s.read(buf)?,
        };
        if n > 0 && self.idle {
            // First byte of a frame: the peer now has the frame budget to
            // deliver the rest, however slowly it drips.
            self.arm_frame();
        }
        Ok(n)
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let left = self.remaining()?;
        self.stream.set_write_timeout(Some(left))?;
        match &mut self.stream {
            Stream::Tcp(s) => s.write(buf),
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match &mut self.stream {
            Stream::Tcp(s) => s.flush(),
            Stream::Unix(s) => s.flush(),
        }
    }
}

/// The admission queue shared between the accept loop and the workers.
/// Each connection carries its admission instant so the dequeuing worker
/// can record the queue wait.
struct Queue {
    conns: Mutex<VecDeque<(Conn, Instant)>>,
    ready: Condvar,
    stop: AtomicBool,
    drain_until: Mutex<Option<Instant>>,
}

/// The daemon. [`Server::bind`] opens the socket (so the caller can learn
/// the resolved port before serving); [`Server::run`] blocks until
/// shutdown completes.
pub struct Server {
    listener: Listener,
    bound: BoundAddr,
    registry: StoreRegistry,
    config: ServeConfig,
    cache: Mutex<ResultCache>,
    metrics: ServeMetrics,
    flight: FlightRecorder,
    flight_names: FlightNames,
    access_log: Option<AccessLog>,
    /// Throttles shed-triggered flight dumps (µs timestamp of the last).
    last_shed_dump_us: AtomicU64,
    stop: Arc<AtomicBool>,
}

impl Server {
    /// Binds the listen socket and loads (or initializes) the result
    /// cache.
    pub fn bind(registry: StoreRegistry, config: ServeConfig) -> io::Result<Server> {
        let (listener, bound) = match &config.bind {
            Bind::Tcp(addr) => {
                let l = TcpListener::bind(addr.as_str())?;
                let a = l.local_addr()?;
                (Listener::Tcp(l), BoundAddr::Tcp(a))
            }
            Bind::Unix(path) => {
                // The daemon owns its socket path; a stale file from a
                // previous crash would otherwise block the bind forever.
                std::fs::remove_file(path).ok();
                let l = UnixListener::bind(path)?;
                (Listener::Unix(l), BoundAddr::Unix(path.clone()))
            }
        };
        let cache = match &config.cache_path {
            Some(p) => ResultCache::open_with_limits(p, config.cache_limits),
            None => ResultCache::in_memory_with_limits(config.cache_limits),
        };
        // One ring per worker plus one for the accept loop; names are
        // interned now so recording never touches the name table.
        let flight = FlightRecorder::new(config.workers.max(1) + 1, config.flight_events);
        let flight_names = FlightNames {
            request: flight.register("serve.request"),
            shed: flight.register("serve.shed"),
            panic: flight.register("serve.panic"),
            queue_depth: flight.register("serve.queue_depth"),
            queue_wait: flight.register("serve.queue_wait_us"),
        };
        let access_log = match &config.access_log {
            Some(p) => Some(AccessLog::open(
                p,
                config
                    .slow_ms
                    .map_or(u64::MAX, |ms| ms.saturating_mul(1_000)),
            )?),
            None => None,
        };
        Ok(Server {
            listener,
            bound,
            registry,
            config,
            cache: Mutex::new(cache),
            metrics: ServeMetrics::new(),
            flight,
            flight_names,
            access_log,
            last_shed_dump_us: AtomicU64::new(u64::MAX),
            stop: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The address actually bound.
    pub fn local_addr(&self) -> &BoundAddr {
        &self.bound
    }

    /// The stores this daemon serves.
    pub fn registry(&self) -> &StoreRegistry {
        &self.registry
    }

    /// A handle that requests shutdown when stored `true` (tests use this
    /// in place of a signal).
    pub fn stop_handle(&self) -> Arc<AtomicBool> {
        self.stop.clone()
    }

    /// Number of cache entries recovered at startup (for the "warm cache"
    /// banner).
    pub fn warm_cache_entries(&self) -> usize {
        self.cache.lock().expect("cache poisoned").stats().entries
    }

    fn shutting_down(&self) -> bool {
        self.stop.load(Ordering::SeqCst) || signal::requested()
    }

    /// Serves until shutdown, then drains, flushes the cache, and returns.
    pub fn run(self) -> io::Result<()> {
        match &self.listener {
            Listener::Tcp(l) => l.set_nonblocking(true)?,
            Listener::Unix(l) => l.set_nonblocking(true)?,
        }
        let queue = Queue {
            conns: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            stop: AtomicBool::new(false),
            drain_until: Mutex::new(None),
        };
        let obs = ppm_observe::current();

        signal::install_usr1_handler();

        std::thread::scope(|scope| {
            for worker in 0..self.config.workers.max(1) {
                let obs = obs.clone();
                let queue = &queue;
                let server = &self;
                scope.spawn(move || {
                    let _g = ppm_observe::attach(obs);
                    server.worker_loop(queue, worker);
                });
            }

            // Accept loop: poll-accept so the shutdown flag (and a
            // pending SIGUSR1 flight-dump request) is observed within one
            // tick even with no traffic.
            let mut last_exposition = Instant::now();
            let mut last_verify = Instant::now();
            loop {
                if self.shutting_down() {
                    break;
                }
                if signal::take_flight_dump() {
                    self.dump_flight("usr1");
                }
                if self.config.metrics_out.is_some()
                    && last_exposition.elapsed() >= Duration::from_secs(1)
                {
                    self.write_metrics_file();
                    last_exposition = Instant::now();
                }
                if self.config.verify_interval_ms > 0
                    && last_verify.elapsed()
                        >= Duration::from_millis(self.config.verify_interval_ms)
                {
                    // Store health check: a store whose file went corrupt
                    // is quarantined here; the rest keep serving.
                    self.registry.reverify_all();
                    last_verify = Instant::now();
                }
                let accepted = match &self.listener {
                    Listener::Tcp(l) => l.accept().map(|(s, _)| Stream::Tcp(s)),
                    Listener::Unix(l) => l.accept().map(|(s, _)| Stream::Unix(s)),
                };
                match accepted {
                    Ok(stream) => self.admit(stream, &queue),
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => std::thread::sleep(Duration::from_millis(5)),
                }
            }

            // Drain: no new admissions; workers finish the queue under the
            // deadline, then exit.
            *queue.drain_until.lock().expect("drain poisoned") =
                Some(Instant::now() + Duration::from_millis(self.config.drain_ms));
            queue.stop.store(true, Ordering::SeqCst);
            queue.ready.notify_all();
        });

        self.cache.lock().expect("cache poisoned").flush();
        self.write_metrics_file();
        if let BoundAddr::Unix(path) = &self.bound {
            std::fs::remove_file(path).ok();
        }
        ppm_observe::mark("serve.stopped", || {
            format!(
                "served {} queries, shed {}, {} panics contained",
                self.metrics.served.load(Ordering::Relaxed),
                self.metrics.shed.load(Ordering::Relaxed),
                self.metrics.panics.load(Ordering::Relaxed)
            )
        });
        Ok(())
    }

    /// The current Prometheus exposition text.
    fn exposition(&self) -> String {
        let cache = self.cache.lock().expect("cache poisoned").stats();
        metrics::prometheus_text(
            &self.metrics,
            &cache,
            self.registry.len(),
            self.registry.quarantined_count(),
        )
    }

    /// Atomically rewrites the `--metrics-out` file (no-op when not
    /// configured; write failures are swallowed — metrics must never
    /// take the daemon down).
    fn write_metrics_file(&self) {
        if let Some(path) = &self.config.metrics_out {
            let _ = metrics::write_exposition(path, &self.exposition());
        }
    }

    /// Dumps the flight recorder as JSON lines — a header object naming
    /// the trigger, then every retained event — to the configured dump
    /// path (truncating; each dump is a complete snapshot) or stderr.
    fn dump_flight(&self, reason: &str) {
        let mut buf = Vec::new();
        let header = Json::Obj(vec![
            ("kind".to_owned(), Json::Str("flight_dump".to_owned())),
            ("reason".to_owned(), Json::Str(reason.to_owned())),
            ("at_us".to_owned(), Json::from_u64(self.metrics.now_us())),
            ("rings".to_owned(), Json::from_usize(self.flight.rings())),
            (
                "capacity".to_owned(),
                Json::from_usize(self.flight.capacity()),
            ),
        ]);
        let _ = writeln!(buf, "{}", header.render());
        let _ = self.flight.dump_json_lines(&mut buf);
        match &self.config.flight_path {
            Some(path) => {
                let _ = std::fs::write(path, &buf);
            }
            None => {
                let _ = io::stderr().write_all(&buf);
            }
        }
    }

    /// The accept loop's flight-recorder ring (workers own `0..workers`).
    fn accept_ring(&self) -> usize {
        self.config.workers.max(1)
    }

    /// Admission control: into the bounded queue, or shed with an
    /// explicit overload frame. A shed triggers a flight dump (throttled
    /// to one per second — shedding happens in bursts) so the recent
    /// history that led to the overload is preserved.
    fn admit(&self, stream: Stream, queue: &Queue) {
        let Ok(conn) = Conn::new(stream, &self.config) else {
            return;
        };
        let mut conns = queue.conns.lock().expect("queue poisoned");
        if conns.len() >= self.config.queue_cap {
            drop(conns);
            self.metrics.shed.fetch_add(1, Ordering::Relaxed);
            ppm_observe::counter("serve.shed", 1);
            self.flight.record(
                self.accept_ring(),
                FlightKind::Counter,
                self.flight_names.shed,
                self.metrics.now_us(),
                1,
                0,
            );
            let mut conn = conn;
            conn.arm_frame();
            let _ =
                protocol::write_frame(&mut conn, &overload_response(self.config.retry_after_ms));
            let now_us = self.metrics.now_us();
            let last = self.last_shed_dump_us.load(Ordering::Relaxed);
            if last == u64::MAX || now_us.saturating_sub(last) >= 1_000_000 {
                self.last_shed_dump_us.store(now_us, Ordering::Relaxed);
                self.dump_flight("shed");
            }
            return;
        }
        conns.push_back((conn, Instant::now()));
        let depth = conns.len() as u64;
        drop(conns);
        self.metrics.queue_depth.store(depth, Ordering::Relaxed);
        ppm_observe::gauge("serve.queue_depth", depth);
        self.flight.record(
            self.accept_ring(),
            FlightKind::Gauge,
            self.flight_names.queue_depth,
            self.metrics.now_us(),
            depth,
            0,
        );
        queue.ready.notify_one();
    }

    /// One worker: pop connections until the queue closes (or the drain
    /// deadline expires), serving every frame on each. `worker` is this
    /// worker's flight-recorder ring.
    fn worker_loop(&self, queue: &Queue, worker: usize) {
        loop {
            let conn = {
                let mut conns = queue.conns.lock().expect("queue poisoned");
                loop {
                    let stopping = queue.stop.load(Ordering::SeqCst);
                    if stopping {
                        let expired = queue
                            .drain_until
                            .lock()
                            .expect("drain poisoned")
                            .is_some_and(|d| Instant::now() >= d);
                        if expired {
                            break None;
                        }
                    }
                    if let Some((c, admitted_at)) = conns.pop_front() {
                        let depth = conns.len() as u64;
                        self.metrics.queue_depth.store(depth, Ordering::Relaxed);
                        // The gauge must fall on dequeue too, or an idle
                        // daemon reports its last high-water mark forever.
                        ppm_observe::gauge("serve.queue_depth", depth);
                        break Some((c, admitted_at));
                    }
                    if stopping {
                        break None;
                    }
                    let (guard, _) = queue
                        .ready
                        .wait_timeout(conns, Duration::from_millis(50))
                        .expect("queue poisoned");
                    conns = guard;
                }
            };
            match conn {
                Some((c, admitted_at)) => {
                    let queue_wait_us = admitted_at.elapsed().as_micros() as u64;
                    self.metrics.queue_wait_us.record(queue_wait_us);
                    self.flight.record(
                        worker,
                        FlightKind::Mark,
                        self.flight_names.queue_wait,
                        self.metrics.now_us(),
                        queue_wait_us,
                        0,
                    );
                    let busy = Instant::now();
                    self.serve_conn(c, queue_wait_us, worker);
                    self.metrics
                        .worker_busy_us
                        .fetch_add(busy.elapsed().as_micros() as u64, Ordering::Relaxed);
                }
                None => break,
            }
        }
    }

    /// Serves every frame on one connection; a panic inside dispatch is
    /// contained to an error response (and triggers a flight dump).
    /// `queue_wait_us` is attributed to the first frame's access-log
    /// line; subsequent frames on the same connection never waited.
    fn serve_conn(&self, mut conn: Conn, queue_wait_us: u64, worker: usize) {
        let mut first_frame = true;
        let mut frames_served: u64 = 0;
        loop {
            if frames_served >= self.config.max_requests_per_conn.max(1) {
                // Per-connection budget spent: close politely; a
                // reconnect goes through admission behind everyone else.
                return;
            }
            conn.arm_idle();
            let req = match protocol::read_frame(&mut conn) {
                Ok(Some(req)) => req,
                Ok(None) => return,
                Err(e) => {
                    self.close_on_read_error(&mut conn, &e);
                    return;
                }
            };
            frames_served += 1;
            let started = Instant::now();
            let span_id = 2 * self.metrics.served.load(Ordering::Relaxed) + worker as u64;
            self.flight.record(
                worker,
                FlightKind::SpanStart,
                self.flight_names.request,
                self.metrics.now_us(),
                span_id,
                0,
            );
            let _span = ppm_observe::span("serve.request");
            // Layer the per-query phase capture over whatever sink the
            // operator installed: phases are measured even when tracing
            // is off, and the outer sink keeps seeing every event.
            let capture = Arc::new(PhaseCapture::new(ppm_observe::current_sink()));
            let dispatched = {
                let capture = capture.clone();
                catch_unwind(AssertUnwindSafe(|| {
                    let _phases = ppm_observe::install(capture);
                    self.dispatch(&req)
                }))
            };
            let panicked = dispatched.is_err();
            let resp = match dispatched {
                Ok(resp) => resp,
                Err(payload) => {
                    self.metrics.panics.fetch_add(1, Ordering::Relaxed);
                    ppm_observe::counter("serve.panics", 1);
                    self.flight.record(
                        worker,
                        FlightKind::Mark,
                        self.flight_names.panic,
                        self.metrics.now_us(),
                        1,
                        0,
                    );
                    self.dump_flight("panic");
                    let what = panic_message(&payload);
                    error_response(
                        ErrorCode::Internal,
                        format!("query panicked ({what}); the daemon is still serving"),
                        Vec::new(),
                    )
                }
            };
            let service_us = started.elapsed().as_micros() as u64;
            self.metrics.service_us.record(service_us);
            let (scan1, scan2, derive) = capture.phase_us();
            if scan1 > 0 {
                self.metrics.scan1_us.record(scan1);
            }
            if scan2 > 0 {
                self.metrics.scan2_us.record(scan2);
            }
            if derive > 0 {
                self.metrics.derive_us.record(derive);
            }
            self.flight.record(
                worker,
                FlightKind::SpanEnd,
                self.flight_names.request,
                self.metrics.now_us(),
                span_id,
                service_us,
            );
            self.metrics.served.fetch_add(1, Ordering::Relaxed);
            self.log_access(
                &req,
                &resp,
                panicked,
                if first_frame { queue_wait_us } else { 0 },
                service_us,
                &capture,
            );
            first_frame = false;
            conn.arm_frame();
            if protocol::write_frame(&mut conn, &resp).is_err() {
                return;
            }
            if self.shutting_down() {
                return;
            }
        }
    }

    /// Classifies a failed frame read before the connection closes.
    /// Malformed bytes (oversized or garbage length prefix, bad
    /// UTF-8/JSON) get a typed `error` frame first — the peer is told
    /// what it sent, never silently dropped or hung. Deadline expiries
    /// count toward `conn_reaped` (idle peers and slow-loris drips
    /// alike). Plain disconnects are just closed.
    fn close_on_read_error(&self, conn: &mut Conn, e: &io::Error) {
        match e.kind() {
            io::ErrorKind::InvalidData => {
                self.metrics.bad_frames.fetch_add(1, Ordering::Relaxed);
                ppm_observe::counter("serve.bad_frames", 1);
                conn.arm_frame();
                let _ = protocol::write_frame(
                    conn,
                    &error_response(ErrorCode::Usage, format!("bad frame: {e}"), Vec::new()),
                );
            }
            io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock => {
                self.metrics.conn_reaped.fetch_add(1, Ordering::Relaxed);
                ppm_observe::counter("serve.conn_reaped", 1);
                ppm_observe::mark("serve.conn_reaped", || {
                    if conn.was_idle() {
                        "reaped idle connection".to_owned()
                    } else {
                        "reaped mid-frame stall (slow-loris defense)".to_owned()
                    }
                });
            }
            _ => {}
        }
    }

    /// Writes one access-log line for a served frame (no-op when the log
    /// is not configured).
    fn log_access(
        &self,
        req: &Json,
        resp: &Json,
        panicked: bool,
        queue_us: u64,
        service_us: u64,
        capture: &PhaseCapture,
    ) {
        let Some(log) = &self.access_log else {
            return;
        };
        let store = req.get("store").and_then(Json::as_str);
        let fingerprint = store
            .and_then(|s| self.registry.get(s))
            .map(|s| s.fingerprint());
        let (outcome, code) = if panicked {
            ("panic", ErrorCode::Internal.wire())
        } else {
            match resp.get("type").and_then(Json::as_str) {
                Some("error") => (
                    "error",
                    resp.get("code").and_then(Json::as_u64).unwrap_or(1),
                ),
                _ => ("ok", 0),
            }
        };
        let detail = if service_us >= log.slow_us {
            Some(capture.events())
        } else {
            None
        };
        log.log(
            self.metrics.now_us(),
            &AccessRecord {
                op: req.get("op").and_then(Json::as_str).unwrap_or("?"),
                store,
                fingerprint,
                period: req.get("period").and_then(Json::as_u64),
                engine: req.get("engine").and_then(Json::as_str),
                cached: resp.get("cached").and_then(Json::as_str),
                queue_us,
                service_us,
                outcome,
                code,
                slow_detail: detail.as_deref(),
            },
        );
    }

    /// Validates the envelope and routes to the op handler; every failure
    /// becomes a typed error response.
    fn dispatch(&self, req: &Json) -> Json {
        match req.get("v").and_then(Json::as_u64) {
            Some(protocol::VERSION) => {}
            other => {
                return error_response(
                    ErrorCode::Usage,
                    format!(
                        "unsupported protocol version {other:?}; this daemon speaks v{}",
                        protocol::VERSION
                    ),
                    Vec::new(),
                )
            }
        }
        let op = match req.get("op").and_then(Json::as_str) {
            Some(op) => op,
            None => {
                return error_response(
                    ErrorCode::Usage,
                    "request has no \"op\" field".into(),
                    Vec::new(),
                )
            }
        };
        let outcome = match op {
            "mine" => self.op_mine(req),
            "rules" => self.op_rules(req),
            "verify" => self.op_verify(req),
            "info" => self.op_info(req),
            "health" => Ok(self.op_health(req)),
            "stats" => Ok(self.op_stats()),
            "metrics" => Ok(result_response(
                "metrics",
                vec![("exposition".to_owned(), Json::Str(self.exposition()))],
            )),
            "shutdown" => {
                self.stop.store(true, Ordering::SeqCst);
                Ok(result_response(
                    "shutdown",
                    vec![("draining".to_owned(), Json::Bool(true))],
                ))
            }
            "panic" if self.config.test_faults => panic!("injected test panic"),
            other => Err(OpError::usage(format!(
                "unknown op {other:?} (mine|rules|verify|info|health|stats|metrics|shutdown)"
            ))),
        };
        match outcome {
            Ok(resp) => resp,
            Err(e) => error_response(e.code, e.message, e.extras),
        }
    }

    fn op_mine(&self, req: &Json) -> Result<Json, OpError> {
        let q = MineQuery::parse(req, &self.config)?;
        let store = self
            .registry
            .get(&q.store)
            .ok_or_else(|| OpError::usage(format!("unknown store {:?}", q.store)))?;
        gate_health(store)?;

        if q.quarantine {
            return self.mine_quarantined(store, &q);
        }

        let key = CacheKey {
            fingerprint: store.fingerprint(),
            period: q.period,
            conf_bits: q.min_conf.to_bits(),
            engine: q.engine.clone(),
        };
        if !q.no_cache {
            let lookup_started = Instant::now();
            let (cached, outcome) = self.cache.lock().expect("cache poisoned").lookup(&key);
            self.metrics
                .cache_lookup_us
                .record(lookup_started.elapsed().as_micros() as u64);
            if let Some(c) = cached {
                let label = match outcome {
                    CacheOutcome::Hit => "hit",
                    CacheOutcome::Derived => "derived",
                    CacheOutcome::Miss => unreachable!("lookup returned a value"),
                };
                self.metrics.count_cache_label(label);
                ppm_observe::counter("serve.cache.answers", 1);
                match label {
                    "hit" => ppm_observe::counter("serve.cache.hits", 1),
                    _ => ppm_observe::counter("serve.cache.derived", 1),
                }
                return Ok(mine_response(&q, &c, label, None));
            }
            self.metrics.count_cache_label("miss");
            ppm_observe::counter("serve.cache.misses", 1);
        }

        let _span = ppm_observe::span("serve.mine");
        let view = store.view();
        let mined = match q.engine.as_str() {
            "apriori" => ppm_core::apriori::mine_view(view, q.period, &q.config),
            "vertical" => ppm_core::vertical::mine_vertical_view(view, q.period, &q.config),
            _ => ppm_core::hitset::mine_view(view, q.period, &q.config),
        };
        let result = mined.map_err(OpError::from_mining)?;
        let cached = to_cached(&result, store.reader.catalog());
        if !q.no_cache {
            let mut cache = self.cache.lock().expect("cache poisoned");
            cache.insert(key, cached.clone());
        }
        Ok(mine_response(&q, &cached, "miss", None))
    }

    /// The quarantine path: materialize, clean (optionally injecting
    /// garbage when the fault surface is enabled), mine the cleaned
    /// series. Never cached — the cleaned series is not the store.
    fn mine_quarantined(
        &self,
        store: &crate::store::Store,
        q: &MineQuery,
    ) -> Result<Json, OpError> {
        if q.inject_garbage.is_some() && !self.config.test_faults {
            return Err(OpError::usage(
                "inject_garbage requires the daemon to run with --test-faults".into(),
            ));
        }
        let series = store.reader.to_series();
        let mem = MemorySource::new(&series);
        let mut faulty;
        let mut plain;
        let source: &mut dyn SeriesSource = match q.inject_garbage {
            Some(t) => {
                let mut plan = FaultPlan::new();
                for attempt in 0..32 {
                    plan = plan.fail_scan(attempt, Fault::Garbage { instant: t });
                }
                faulty = FaultInjectingSource::new(mem, plan);
                &mut faulty
            }
            None => {
                plain = mem;
                &mut plain
            }
        };
        let mut qsrc = QuarantiningSource::new(source, QuarantineMode::Quarantine);
        let mut builder = SeriesBuilder::new();
        qsrc.scan(&mut |_, feats| builder.push_instant(feats.iter().copied()))
            .map_err(|e| OpError::internal(format!("quarantine scan failed: {e}")))?;
        let (_, report) = qsrc.into_parts();
        let cleaned = builder.finish();

        let mined = match q.engine.as_str() {
            "apriori" => ppm_core::mine(&cleaned, q.period, &q.config, Algorithm::Apriori),
            "vertical" => ppm_core::vertical::mine_vertical(&cleaned, q.period, &q.config),
            _ => ppm_core::mine(&cleaned, q.period, &q.config, Algorithm::HitSet),
        };
        let result = mined.map_err(OpError::from_mining)?;
        let cached = to_cached(&result, store.reader.catalog());
        Ok(mine_response(q, &cached, "bypass", Some(report.len())))
    }

    fn op_rules(&self, req: &Json) -> Result<Json, OpError> {
        let q = MineQuery::parse(req, &self.config)?;
        let store = self
            .registry
            .get(&q.store)
            .ok_or_else(|| OpError::usage(format!("unknown store {:?}", q.store)))?;
        gate_health(store)?;
        let min_rule_conf = req
            .get("min_rule_conf")
            .and_then(Json::as_f64)
            .unwrap_or(0.8);
        let _span = ppm_observe::span("serve.rules");
        let result = ppm_core::hitset::mine_view(store.view(), q.period, &q.config)
            .map_err(OpError::from_mining)?;
        let rules = ppm_core::rules::generate_rules(&result, min_rule_conf);
        let rows: Vec<Json> = rules
            .iter()
            .take(q.limit)
            .map(|r| Json::Str(r.display(&result, store.reader.catalog())))
            .collect();
        Ok(result_response(
            "rules",
            vec![
                ("store".to_owned(), Json::Str(q.store.clone())),
                ("period".to_owned(), Json::from_usize(q.period)),
                ("min_rule_conf".to_owned(), Json::Num(min_rule_conf)),
                ("n_rules".to_owned(), Json::from_usize(rules.len())),
                ("n_frequent".to_owned(), Json::from_usize(result.len())),
                ("rows".to_owned(), Json::Arr(rows)),
            ],
        ))
    }

    fn op_verify(&self, req: &Json) -> Result<Json, OpError> {
        let q = MineQuery::parse(req, &self.config)?;
        let store = self
            .registry
            .get(&q.store)
            .ok_or_else(|| OpError::usage(format!("unknown store {:?}", q.store)))?;
        gate_health(store)?;
        let _span = ppm_observe::span("serve.verify");
        let check = ppm_core::audit::cross_check_view(
            store.view(),
            q.period,
            &q.config,
            store.reader.catalog(),
        )
        .map_err(OpError::from_mining)?;
        let agreed = check.agreed();
        let violations: Vec<Json> = check
            .report
            .violations
            .iter()
            .map(|v| Json::Str(v.to_string()))
            .collect();
        Ok(result_response(
            "verify",
            vec![
                ("store".to_owned(), Json::Str(q.store.clone())),
                ("period".to_owned(), Json::from_usize(q.period)),
                (
                    "engines".to_owned(),
                    Json::from_usize(check.algorithms.len()),
                ),
                ("compared".to_owned(), Json::from_usize(check.compared)),
                ("agreed".to_owned(), Json::Bool(agreed)),
                ("violations".to_owned(), Json::Arr(violations)),
            ],
        ))
    }

    fn op_info(&self, req: &Json) -> Result<Json, OpError> {
        let filter = req.get("store").and_then(Json::as_str);
        let mut stores = Vec::new();
        for s in self.registry.iter() {
            if filter.is_some_and(|f| f != s.name) {
                continue;
            }
            stores.push(Json::Obj(vec![
                ("name".to_owned(), Json::Str(s.name.clone())),
                ("instants".to_owned(), Json::from_usize(s.reader.len())),
                ("width".to_owned(), Json::from_usize(s.reader.width())),
                (
                    "features".to_owned(),
                    Json::from_usize(s.reader.catalog().len()),
                ),
                (
                    "file_bytes".to_owned(),
                    Json::from_usize(s.reader.file_bytes()),
                ),
                (
                    "fingerprint".to_owned(),
                    Json::Str(format!("{:016x}", s.fingerprint())),
                ),
            ]));
        }
        if let Some(name) = filter {
            if stores.is_empty() {
                return Err(OpError::usage(format!("unknown store {name:?}")));
            }
        }
        Ok(result_response(
            "info",
            vec![("stores".to_owned(), Json::Arr(stores))],
        ))
    }

    /// The readiness probe: per-store health with optional synchronous
    /// re-verification (`"recheck": true`). `ready` means the daemon is
    /// still admitting queries at all; `degraded` means at least one
    /// store is quarantined (every healthy store keeps serving).
    fn op_health(&self, req: &Json) -> Json {
        if matches!(req.get("recheck"), Some(Json::Bool(true))) {
            self.registry.reverify_all();
        }
        let stores: Vec<Json> = self
            .registry
            .iter()
            .map(|s| {
                Json::Obj(vec![
                    ("name".to_owned(), Json::Str(s.name.clone())),
                    (
                        "status".to_owned(),
                        Json::Str(
                            if s.is_quarantined() {
                                "quarantined"
                            } else {
                                "ok"
                            }
                            .to_owned(),
                        ),
                    ),
                    (
                        "fingerprint".to_owned(),
                        Json::Str(format!("{:016x}", s.fingerprint())),
                    ),
                ])
            })
            .collect();
        let quarantined = self.registry.quarantined_count();
        result_response(
            "health",
            vec![
                ("ready".to_owned(), Json::Bool(!self.shutting_down())),
                ("degraded".to_owned(), Json::Bool(quarantined > 0)),
                (
                    "stores_total".to_owned(),
                    Json::from_usize(self.registry.len()),
                ),
                (
                    "stores_quarantined".to_owned(),
                    Json::from_usize(quarantined),
                ),
                ("stores".to_owned(), Json::Arr(stores)),
            ],
        )
    }

    fn op_stats(&self) -> Json {
        let cache = self.cache.lock().expect("cache poisoned").stats();
        result_response(
            "stats",
            vec![
                (
                    "queue_depth".to_owned(),
                    Json::from_u64(self.metrics.queue_depth.load(Ordering::Relaxed)),
                ),
                (
                    "shed".to_owned(),
                    Json::from_u64(self.metrics.shed.load(Ordering::Relaxed)),
                ),
                (
                    "served".to_owned(),
                    Json::from_u64(self.metrics.served.load(Ordering::Relaxed)),
                ),
                (
                    "panics".to_owned(),
                    Json::from_u64(self.metrics.panics.load(Ordering::Relaxed)),
                ),
                (
                    "conn_reaped".to_owned(),
                    Json::from_u64(self.metrics.conn_reaped.load(Ordering::Relaxed)),
                ),
                (
                    "bad_frames".to_owned(),
                    Json::from_u64(self.metrics.bad_frames.load(Ordering::Relaxed)),
                ),
                ("stores".to_owned(), Json::from_usize(self.registry.len())),
                (
                    "stores_quarantined".to_owned(),
                    Json::from_usize(self.registry.quarantined_count()),
                ),
                (
                    "uptime_s".to_owned(),
                    Json::from_u64(self.metrics.uptime_s()),
                ),
                (
                    "worker_busy_us".to_owned(),
                    Json::from_u64(self.metrics.worker_busy_us.load(Ordering::Relaxed)),
                ),
                (
                    "cache".to_owned(),
                    Json::Obj(vec![
                        ("entries".to_owned(), Json::from_usize(cache.entries)),
                        ("bytes".to_owned(), Json::from_usize(cache.bytes)),
                        ("hits".to_owned(), Json::from_u64(cache.hits)),
                        ("derived".to_owned(), Json::from_u64(cache.derived)),
                        ("misses".to_owned(), Json::from_u64(cache.misses)),
                        ("rejected".to_owned(), Json::from_u64(cache.rejected)),
                        ("evictions".to_owned(), Json::from_u64(cache.evictions)),
                    ]),
                ),
                ("latency".to_owned(), self.metrics.latency_json()),
            ],
        )
    }
}

/// What the common query ops parse out of a request.
struct MineQuery {
    store: String,
    period: usize,
    min_conf: f64,
    engine: String,
    limit: usize,
    config: MineConfig,
    quarantine: bool,
    inject_garbage: Option<usize>,
    no_cache: bool,
}

impl MineQuery {
    fn parse(req: &Json, server: &ServeConfig) -> Result<MineQuery, OpError> {
        let store = req_str(req, "store").map_err(OpError::usage)?.to_owned();
        let period = req_u64(req, "period").map_err(OpError::usage)? as usize;
        if period == 0 {
            return Err(OpError::usage("period must be at least 1".into()));
        }
        let min_conf = req_f64(req, "min_conf").map_err(OpError::usage)?;
        let engine = req
            .get("engine")
            .and_then(Json::as_str)
            .unwrap_or("hitset")
            .to_owned();
        if !matches!(engine.as_str(), "hitset" | "apriori" | "vertical") {
            return Err(OpError::usage(format!(
                "engine {engine:?} is not servable (hitset|apriori|vertical)"
            )));
        }
        let limit = req.get("limit").and_then(Json::as_u64).unwrap_or(20) as usize;
        let mut config =
            MineConfig::new(min_conf).map_err(|e| OpError::usage(format!("bad min_conf: {e}")))?;
        let deadline_ms = req
            .get("deadline_ms")
            .and_then(Json::as_u64)
            .or(server.default_deadline_ms);
        if let Some(ms) = deadline_ms {
            config = config.with_deadline(Duration::from_millis(ms));
        }
        let max_tree_nodes = req
            .get("max_tree_nodes")
            .and_then(Json::as_u64)
            .map(|n| n as usize)
            .or(server.default_max_tree_nodes);
        if let Some(n) = max_tree_nodes {
            config = config.with_max_tree_nodes(n);
        }
        Ok(MineQuery {
            store,
            period,
            min_conf,
            engine,
            limit,
            config,
            quarantine: matches!(req.get("quarantine"), Some(Json::Bool(true))),
            inject_garbage: req
                .get("inject_garbage")
                .and_then(Json::as_u64)
                .map(|t| t as usize),
            no_cache: matches!(req.get("no_cache"), Some(Json::Bool(true))),
        })
    }
}

/// Rejects queries against a quarantined store with the typed error the
/// failover client keys on: code 4 plus `store_quarantined: true` means
/// "this replica's copy is bad — a healthy replica may still serve it",
/// which is precisely a failover trigger, not a client mistake.
fn gate_health(store: &crate::store::Store) -> Result<(), OpError> {
    if store.is_quarantined() {
        return Err(OpError {
            code: ErrorCode::Quarantined,
            message: format!(
                "store {:?} is quarantined (checksum re-verification failed); \
                 a healthy replica may still serve it",
                store.name
            ),
            extras: vec![("store_quarantined".to_owned(), Json::Bool(true))],
        });
    }
    Ok(())
}

/// A typed op failure on its way to an `error` frame.
struct OpError {
    code: ErrorCode,
    message: String,
    extras: Vec<(String, Json)>,
}

impl OpError {
    fn usage(message: String) -> OpError {
        OpError {
            code: ErrorCode::Usage,
            message,
            extras: Vec::new(),
        }
    }

    fn internal(message: String) -> OpError {
        OpError {
            code: ErrorCode::Internal,
            message,
            extras: Vec::new(),
        }
    }

    /// Maps a mining failure onto the taxonomy: guard trips carry their
    /// partial stats (code 3), transient exhaustion is code 5, the rest
    /// is internal.
    fn from_mining(e: ppm_core::Error) -> OpError {
        if let Some(stats) = e.partial_stats() {
            return OpError {
                code: ErrorCode::PartialResult,
                message: format!("mining aborted: {e}"),
                extras: vec![(
                    "partial_stats".to_owned(),
                    Json::Obj(vec![
                        (
                            "series_scans".to_owned(),
                            Json::from_usize(stats.series_scans),
                        ),
                        ("tree_nodes".to_owned(), Json::from_usize(stats.tree_nodes)),
                        (
                            "hit_insertions".to_owned(),
                            Json::from_u64(stats.hit_insertions),
                        ),
                    ]),
                )],
            };
        }
        if e.is_transient() {
            return OpError {
                code: ErrorCode::RetriesExhausted,
                message: format!("transient failure survived retries: {e}"),
                extras: Vec::new(),
            };
        }
        OpError::internal(format!("mining error: {e}"))
    }
}

/// Converts a mined result into canonical cached rows (report order).
fn to_cached(result: &MiningResult, catalog: &FeatureCatalog) -> CachedResult {
    let mut rows: Vec<&ppm_core::FrequentPattern> = result.frequent.iter().collect();
    rows.sort_by(|a, b| {
        b.letters
            .len()
            .cmp(&a.letters.len())
            .then(b.count.cmp(&a.count))
    });
    CachedResult {
        segment_count: result.segment_count,
        scans: result.stats.series_scans,
        rows: rows
            .into_iter()
            .map(|fp| CachedRow {
                display: Pattern::from_letter_set(&result.alphabet, &fp.letters)
                    .display(catalog)
                    .to_string(),
                letters: fp.letters.len(),
                count: fp.count,
            })
            .collect(),
    }
}

/// Builds the `mine` result frame: totals plus up to `limit` rows.
fn mine_response(
    q: &MineQuery,
    c: &CachedResult,
    cached: &str,
    quarantined: Option<usize>,
) -> Json {
    let rows: Vec<Json> = c
        .rows
        .iter()
        .take(q.limit)
        .map(|r| {
            Json::Arr(vec![
                Json::Str(r.display.clone()),
                Json::from_usize(r.letters),
                Json::from_u64(r.count),
            ])
        })
        .collect();
    let mut fields = vec![
        ("store".to_owned(), Json::Str(q.store.clone())),
        ("period".to_owned(), Json::from_usize(q.period)),
        ("min_conf".to_owned(), Json::Num(q.min_conf)),
        ("engine".to_owned(), Json::Str(q.engine.clone())),
        ("patterns".to_owned(), Json::from_usize(c.rows.len())),
        ("segments".to_owned(), Json::from_usize(c.segment_count)),
        ("scans".to_owned(), Json::from_usize(c.scans)),
        ("cached".to_owned(), Json::Str(cached.to_owned())),
        ("rows".to_owned(), Json::Arr(rows)),
    ];
    if let Some(n) = quarantined {
        fields.push(("quarantined".to_owned(), Json::from_usize(n)));
    }
    result_response("mine", fields)
}

/// Best-effort panic payload rendering for the error message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}
