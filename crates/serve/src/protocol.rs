//! The wire protocol: length-prefixed JSON frames, version 1.
//!
//! ## Framing
//!
//! Every message — request or response, either direction — is one frame:
//!
//! ```text
//! offset 0  length   u32 LE   byte length of the JSON payload
//! offset 4  payload  [u8]     one UTF-8 JSON object
//! ```
//!
//! Frames larger than [`MAX_FRAME`] are rejected before allocation, so a
//! hostile length prefix cannot balloon the daemon. A clean EOF *before*
//! the first length byte means the peer is done; EOF mid-frame is an
//! error.
//!
//! ## Shapes
//!
//! Requests carry `{"v": 1, "op": "<name>", ...}`. Responses are one of:
//!
//! * `{"v": 1, "type": "result", "op": "<name>", ...}` — success payload;
//! * `{"v": 1, "type": "error", "code": N, "message": "..."}` — failure,
//!   with `code` drawn from [`crate::ErrorCode`];
//! * `{"v": 1, "type": "overload", "retry_after_ms": N}` — the admission
//!   queue was full; no work was attempted.
//!
//! ## Versioning
//!
//! `v` is checked on every request; a mismatch yields a `usage` error
//! naming the supported version rather than a silent misparse. New fields
//! may be added to any shape without a version bump — readers ignore
//! unknown fields — while changes to existing fields require bumping
//! [`VERSION`].

use std::io::{self, Read, Write};

use ppm_observe::Json;

use crate::error::ErrorCode;

/// Protocol version spoken by this build.
pub const VERSION: u64 = 1;

/// Hard ceiling on a frame's JSON payload, in bytes.
pub const MAX_FRAME: usize = 1 << 20;

/// Writes one frame.
pub fn write_frame(w: &mut impl Write, message: &Json) -> io::Result<()> {
    let payload = message.render();
    let bytes = payload.as_bytes();
    if bytes.len() > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "frame of {} bytes exceeds MAX_FRAME {MAX_FRAME}",
                bytes.len()
            ),
        ));
    }
    w.write_all(&(bytes.len() as u32).to_le_bytes())?;
    w.write_all(bytes)?;
    w.flush()
}

/// Reads one frame. `Ok(None)` means the peer closed the connection
/// cleanly before starting a frame; truncation mid-frame, an oversized
/// length prefix, or unparseable JSON are errors.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Json>> {
    let mut len_bytes = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut len_bytes[filled..])? {
            0 if filled == 0 => return Ok(None),
            0 => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-length-prefix",
                ))
            }
            n => filled += n,
        }
    }
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds MAX_FRAME {MAX_FRAME}"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    let text = std::str::from_utf8(&payload)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "frame payload is not UTF-8"))?;
    let json = Json::parse(text)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad frame JSON: {e}")))?;
    Ok(Some(json))
}

/// Builds a `result` response for `op` with the given extra fields.
pub fn result_response(op: &str, fields: Vec<(String, Json)>) -> Json {
    let mut obj = vec![
        ("v".to_owned(), Json::from_u64(VERSION)),
        ("type".to_owned(), Json::Str("result".to_owned())),
        ("op".to_owned(), Json::Str(op.to_owned())),
    ];
    obj.extend(fields);
    Json::Obj(obj)
}

/// Builds an `error` response with the given taxonomy code.
pub fn error_response(code: ErrorCode, message: String, extras: Vec<(String, Json)>) -> Json {
    let mut obj = vec![
        ("v".to_owned(), Json::from_u64(VERSION)),
        ("type".to_owned(), Json::Str("error".to_owned())),
        ("code".to_owned(), Json::from_u64(code.wire())),
        ("message".to_owned(), Json::Str(message)),
    ];
    obj.extend(extras);
    Json::Obj(obj)
}

/// Builds an `overload` response with the retry hint.
pub fn overload_response(retry_after_ms: u64) -> Json {
    Json::Obj(vec![
        ("v".to_owned(), Json::from_u64(VERSION)),
        ("type".to_owned(), Json::Str("overload".to_owned())),
        ("retry_after_ms".to_owned(), Json::from_u64(retry_after_ms)),
    ])
}

/// Pulls a required string field out of a request.
pub fn req_str<'a>(req: &'a Json, field: &str) -> Result<&'a str, String> {
    req.get(field)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("request is missing string field {field:?}"))
}

/// Pulls a required integer field out of a request.
pub fn req_u64(req: &Json, field: &str) -> Result<u64, String> {
    req.get(field)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("request is missing integer field {field:?}"))
}

/// Pulls a required float field out of a request.
pub fn req_f64(req: &Json, field: &str) -> Result<f64, String> {
    req.get(field)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("request is missing number field {field:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let msg = result_response("info", vec![("x".to_owned(), Json::from_u64(7))]);
        let mut buf = Vec::new();
        write_frame(&mut buf, &msg).unwrap();
        let mut r = io::Cursor::new(buf);
        let back = read_frame(&mut r).unwrap().unwrap();
        assert_eq!(back.get("op").unwrap().as_str(), Some("info"));
        assert_eq!(back.get("x").unwrap().as_u64(), Some(7));
        // A second read sees the clean EOF.
        assert!(read_frame(&mut r).unwrap().is_none());
    }

    #[test]
    fn oversized_length_prefix_is_rejected_without_allocation() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&(u32::MAX).to_le_bytes());
        bytes.extend_from_slice(b"whatever");
        let err = read_frame(&mut io::Cursor::new(bytes)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("MAX_FRAME"), "{err}");
    }

    #[test]
    fn truncation_mid_frame_is_an_error_not_a_hang() {
        let msg = overload_response(50);
        let mut buf = Vec::new();
        write_frame(&mut buf, &msg).unwrap();
        for cut in 1..buf.len() {
            let err = read_frame(&mut io::Cursor::new(&buf[..cut])).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof, "cut {cut}");
        }
    }

    #[test]
    fn bad_json_is_invalid_data() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&3u32.to_le_bytes());
        bytes.extend_from_slice(b"{{{");
        let err = read_frame(&mut io::Cursor::new(bytes)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn response_builders_stamp_the_version() {
        for msg in [
            result_response("mine", Vec::new()),
            error_response(ErrorCode::Usage, "nope".into(), Vec::new()),
            overload_response(10),
        ] {
            assert_eq!(msg.get("v").unwrap().as_u64(), Some(VERSION));
        }
        let err = error_response(ErrorCode::PartialResult, "slow".into(), Vec::new());
        assert_eq!(err.get("code").unwrap().as_u64(), Some(3));
    }
}
