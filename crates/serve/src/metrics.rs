//! Daemon metrics: latency histograms, Prometheus-style exposition, the
//! per-query access log, and per-query phase capture.
//!
//! Everything here is recording substrate for [`crate::server`]:
//!
//! * [`ServeMetrics`] — the daemon-wide counters and
//!   [`AtomicHistogram`]s (queue wait, service time, per-phase scan1 /
//!   scan2 / derive / cache-lookup durations). Lock-free to record;
//!   snapshotted for the `stats` op, the `metrics` op, and the
//!   `--metrics-out` file.
//! * [`prometheus_text`] — renders the whole state as Prometheus text
//!   exposition (`# TYPE`, `_bucket{le="…"}`, `_sum`, `_count`, plus
//!   explicit `_p50/_p90/_p95/_p99/_max` gauges so dashboards that
//!   cannot run `histogram_quantile` still get quantiles).
//! * [`AccessLog`] — one JSON line per query: op, store fingerprint,
//!   period, engine, cache provenance, queue/service µs, outcome and
//!   wire code; queries at or above the slow threshold additionally
//!   carry the full captured span detail.
//! * [`PhaseCapture`] — a per-query [`Sink`] layered over whatever sink
//!   the operator installed. It forwards every event unchanged and
//!   accumulates `*.scan1` / `*.scan2` / `*.derive` span durations, plus
//!   a bounded buffer of raw events for slow-query logging.

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use ppm_observe::histogram::DEFAULT_GRID_BITS;
use ppm_observe::{AtomicHistogram, Event, Histogram, Json, Sink};

use crate::cache::CacheStats;

/// Quantiles reported everywhere a histogram is summarized.
pub const QUANTILES: [(f64, &str); 5] = [
    (0.50, "p50"),
    (0.90, "p90"),
    (0.95, "p95"),
    (0.99, "p99"),
    (1.00, "max"),
];

/// The daemon-wide metric state. One instance per [`crate::Server`],
/// shared by the accept loop and every worker; recording never takes a
/// lock.
#[derive(Debug)]
pub struct ServeMetrics {
    epoch: Instant,
    /// Queries answered (any outcome that produced a response frame).
    pub served: AtomicU64,
    /// Connections shed by admission control.
    pub shed: AtomicU64,
    /// Panics contained by the per-query `catch_unwind`.
    pub panics: AtomicU64,
    /// Connections reaped by the deadline enforcement (idle peers and
    /// slow-loris/short-write stalls alike).
    pub conn_reaped: AtomicU64,
    /// Malformed wire frames answered with a typed error and a close.
    pub bad_frames: AtomicU64,
    /// Current admission-queue depth.
    pub queue_depth: AtomicU64,
    /// Exact-key cache answers.
    pub cache_hits: AtomicU64,
    /// Anti-monotone derived cache answers.
    pub cache_derived: AtomicU64,
    /// Queries that had to mine.
    pub cache_misses: AtomicU64,
    /// Total µs workers spent serving connections.
    pub worker_busy_us: AtomicU64,
    /// Queue wait per connection: admit → dequeue.
    pub queue_wait_us: AtomicHistogram,
    /// Service time per request frame: read → response written.
    pub service_us: AtomicHistogram,
    /// Per-query scan-1 phase time (first series pass).
    pub scan1_us: AtomicHistogram,
    /// Per-query scan-2 phase time (second series pass).
    pub scan2_us: AtomicHistogram,
    /// Per-query derive phase time (max-subpattern tree walk / bitmap
    /// intersection).
    pub derive_us: AtomicHistogram,
    /// Result-cache lookup time per cache-consulting query.
    pub cache_lookup_us: AtomicHistogram,
}

impl Default for ServeMetrics {
    fn default() -> Self {
        ServeMetrics::new()
    }
}

impl ServeMetrics {
    /// Fresh metrics; the epoch for [`now_us`](Self::now_us) starts here.
    pub fn new() -> ServeMetrics {
        ServeMetrics {
            epoch: Instant::now(),
            served: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            panics: AtomicU64::new(0),
            conn_reaped: AtomicU64::new(0),
            bad_frames: AtomicU64::new(0),
            queue_depth: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_derived: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            worker_busy_us: AtomicU64::new(0),
            queue_wait_us: AtomicHistogram::new(DEFAULT_GRID_BITS),
            service_us: AtomicHistogram::new(DEFAULT_GRID_BITS),
            scan1_us: AtomicHistogram::new(DEFAULT_GRID_BITS),
            scan2_us: AtomicHistogram::new(DEFAULT_GRID_BITS),
            derive_us: AtomicHistogram::new(DEFAULT_GRID_BITS),
            cache_lookup_us: AtomicHistogram::new(DEFAULT_GRID_BITS),
        }
    }

    /// µs since this daemon's metrics epoch (the flight recorder's
    /// timebase).
    pub fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Whole seconds since startup.
    pub fn uptime_s(&self) -> u64 {
        self.epoch.elapsed().as_secs()
    }

    /// Counts a cache provenance label (`hit` / `derived` / `miss`;
    /// `bypass` is deliberately uncounted — quarantine queries never
    /// consult the cache).
    pub fn count_cache_label(&self, label: &str) {
        match label {
            "hit" => self.cache_hits.fetch_add(1, Ordering::Relaxed),
            "derived" => self.cache_derived.fetch_add(1, Ordering::Relaxed),
            "miss" => self.cache_misses.fetch_add(1, Ordering::Relaxed),
            _ => 0,
        };
    }

    /// The latency block of the `stats` response: one summary object per
    /// histogram.
    pub fn latency_json(&self) -> Json {
        Json::Obj(vec![
            (
                "queue_wait".to_owned(),
                summary_json(&self.queue_wait_us.snapshot()),
            ),
            (
                "service".to_owned(),
                summary_json(&self.service_us.snapshot()),
            ),
            ("scan1".to_owned(), summary_json(&self.scan1_us.snapshot())),
            ("scan2".to_owned(), summary_json(&self.scan2_us.snapshot())),
            (
                "derive".to_owned(),
                summary_json(&self.derive_us.snapshot()),
            ),
            (
                "cache_lookup".to_owned(),
                summary_json(&self.cache_lookup_us.snapshot()),
            ),
        ])
    }
}

/// `{count, mean_us, p50_us, p90_us, p95_us, p99_us, max_us}` for one
/// histogram snapshot.
pub fn summary_json(h: &Histogram) -> Json {
    let mut fields = vec![
        ("count".to_owned(), Json::from_u64(h.count())),
        ("mean_us".to_owned(), Json::Num(h.mean().round())),
    ];
    for (q, label) in QUANTILES {
        fields.push((
            format!("{label}_us"),
            Json::from_u64(h.value_at_quantile(q)),
        ));
    }
    Json::Obj(fields)
}

/// Renders the full daemon state as Prometheus text exposition.
pub fn prometheus_text(
    metrics: &ServeMetrics,
    cache: &CacheStats,
    stores: usize,
    stores_quarantined: usize,
) -> String {
    let mut out = String::new();
    let c = |out: &mut String, name: &str, help: &str, v: u64| {
        scalar(out, name, "counter", help, v);
    };
    let g = |out: &mut String, name: &str, help: &str, v: u64| {
        scalar(out, name, "gauge", help, v);
    };
    c(
        &mut out,
        "ppm_serve_served_total",
        "Queries answered with a response frame",
        metrics.served.load(Ordering::Relaxed),
    );
    c(
        &mut out,
        "ppm_serve_shed_total",
        "Connections shed by admission control",
        metrics.shed.load(Ordering::Relaxed),
    );
    c(
        &mut out,
        "ppm_serve_panics_total",
        "Panics contained per-query",
        metrics.panics.load(Ordering::Relaxed),
    );
    c(
        &mut out,
        "ppm_serve_conn_reaped_total",
        "Connections reaped by deadline enforcement",
        metrics.conn_reaped.load(Ordering::Relaxed),
    );
    c(
        &mut out,
        "ppm_serve_bad_frames_total",
        "Malformed wire frames answered with a typed error",
        metrics.bad_frames.load(Ordering::Relaxed),
    );
    c(
        &mut out,
        "ppm_serve_cache_hits_total",
        "Exact-key result-cache answers",
        metrics.cache_hits.load(Ordering::Relaxed),
    );
    c(
        &mut out,
        "ppm_serve_cache_derived_total",
        "Anti-monotone derived cache answers",
        metrics.cache_derived.load(Ordering::Relaxed),
    );
    c(
        &mut out,
        "ppm_serve_cache_misses_total",
        "Queries that had to mine",
        metrics.cache_misses.load(Ordering::Relaxed),
    );
    c(
        &mut out,
        "ppm_serve_worker_busy_us_total",
        "Total microseconds workers spent serving",
        metrics.worker_busy_us.load(Ordering::Relaxed),
    );
    g(
        &mut out,
        "ppm_serve_queue_depth",
        "Current admission-queue depth",
        metrics.queue_depth.load(Ordering::Relaxed),
    );
    g(
        &mut out,
        "ppm_serve_uptime_seconds",
        "Seconds since daemon start",
        metrics.uptime_s(),
    );
    g(&mut out, "ppm_serve_stores", "Stores served", stores as u64);
    g(
        &mut out,
        "ppm_serve_stores_quarantined",
        "Stores quarantined by checksum re-verification",
        stores_quarantined as u64,
    );
    g(
        &mut out,
        "ppm_serve_cache_entries",
        "Live result-cache entries",
        cache.entries as u64,
    );
    g(
        &mut out,
        "ppm_serve_cache_bytes",
        "Approximate bytes held by live cache entries",
        cache.bytes as u64,
    );
    c(
        &mut out,
        "ppm_serve_cache_rejected_total",
        "Cache entries rejected as damaged at load",
        cache.rejected,
    );
    c(
        &mut out,
        "ppm_serve_cache_evictions_total",
        "Cache entries evicted by the size bounds",
        cache.evictions,
    );
    histogram_text(
        &mut out,
        "ppm_serve_queue_wait_us",
        "Queue wait per connection, microseconds",
        &metrics.queue_wait_us.snapshot(),
    );
    histogram_text(
        &mut out,
        "ppm_serve_service_us",
        "Service time per request frame, microseconds",
        &metrics.service_us.snapshot(),
    );
    histogram_text(
        &mut out,
        "ppm_serve_phase_scan1_us",
        "Scan-1 phase per query, microseconds",
        &metrics.scan1_us.snapshot(),
    );
    histogram_text(
        &mut out,
        "ppm_serve_phase_scan2_us",
        "Scan-2 phase per query, microseconds",
        &metrics.scan2_us.snapshot(),
    );
    histogram_text(
        &mut out,
        "ppm_serve_phase_derive_us",
        "Derive phase per query, microseconds",
        &metrics.derive_us.snapshot(),
    );
    histogram_text(
        &mut out,
        "ppm_serve_phase_cache_us",
        "Result-cache lookup per query, microseconds",
        &metrics.cache_lookup_us.snapshot(),
    );
    out
}

fn scalar(out: &mut String, name: &str, kind: &str, help: &str, value: u64) {
    out.push_str(&format!(
        "# HELP {name} {help}\n# TYPE {name} {kind}\n{name} {value}\n"
    ));
}

/// One histogram: cumulative buckets over the non-empty bucket bounds,
/// `+Inf`, `_sum`, `_count`, then explicit quantile gauges.
fn histogram_text(out: &mut String, name: &str, help: &str, h: &Histogram) {
    out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} histogram\n"));
    let mut cumulative = 0u64;
    for (upper, count) in h.nonzero_buckets() {
        cumulative += count;
        out.push_str(&format!("{name}_bucket{{le=\"{upper}\"}} {cumulative}\n"));
    }
    out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", h.count()));
    out.push_str(&format!("{name}_sum {}\n", h.sum()));
    out.push_str(&format!("{name}_count {}\n", h.count()));
    for (q, label) in QUANTILES {
        let series = format!("{name}_{label}");
        out.push_str(&format!(
            "# TYPE {series} gauge\n{series} {}\n",
            h.value_at_quantile(q)
        ));
    }
}

/// Atomically publishes the exposition to `path` (same-directory temp +
/// rename, so a scraper never reads a torn file).
pub fn write_exposition(path: &Path, text: &str) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    {
        let mut f = File::create(&tmp)?;
        f.write_all(text.as_bytes())?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)
}

/// Everything one access-log line records about a query.
#[derive(Debug)]
pub struct AccessRecord<'a> {
    /// Wire op (`mine`, `rules`, …).
    pub op: &'a str,
    /// Store name from the request, if any.
    pub store: Option<&'a str>,
    /// Resolved store content fingerprint, if the store exists.
    pub fingerprint: Option<u64>,
    /// Mining period, if the request carried one.
    pub period: Option<u64>,
    /// Engine, if the request carried one.
    pub engine: Option<&'a str>,
    /// Cache provenance from the response (`hit`/`derived`/`miss`/`bypass`).
    pub cached: Option<&'a str>,
    /// Queue wait for this connection's first frame, µs (0 after).
    pub queue_us: u64,
    /// Service time for this frame, µs.
    pub service_us: u64,
    /// `ok`, `error`, `panic`.
    pub outcome: &'a str,
    /// The wire/exit code the client will map this to (0 on success).
    pub code: u64,
    /// Captured span detail, attached only when the query was slow.
    pub slow_detail: Option<&'a [Json]>,
}

/// Append-only JSON-lines access log. One mutex-guarded appender shared
/// by the workers; a line is a single `write_all`, so concurrent lines
/// never interleave.
#[derive(Debug)]
pub struct AccessLog {
    file: Mutex<File>,
    /// Service-time threshold (µs) at or above which full span detail is
    /// attached; `u64::MAX` disables slow logging.
    pub slow_us: u64,
}

impl AccessLog {
    /// Opens (appending) the access log at `path`.
    pub fn open(path: &Path, slow_us: u64) -> std::io::Result<AccessLog> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(AccessLog {
            file: Mutex::new(file),
            slow_us,
        })
    }

    /// Writes one record as one JSON line. Write failures are swallowed —
    /// losing a log line must never fail a query.
    pub fn log(&self, at_us: u64, r: &AccessRecord<'_>) {
        let mut fields = vec![
            ("at_us".to_owned(), Json::from_u64(at_us)),
            ("op".to_owned(), Json::Str(r.op.to_owned())),
        ];
        if let Some(s) = r.store {
            fields.push(("store".to_owned(), Json::Str(s.to_owned())));
        }
        if let Some(fp) = r.fingerprint {
            fields.push(("fingerprint".to_owned(), Json::Str(format!("{fp:016x}"))));
        }
        if let Some(p) = r.period {
            fields.push(("period".to_owned(), Json::from_u64(p)));
        }
        if let Some(e) = r.engine {
            fields.push(("engine".to_owned(), Json::Str(e.to_owned())));
        }
        if let Some(c) = r.cached {
            fields.push(("cached".to_owned(), Json::Str(c.to_owned())));
        }
        fields.push(("queue_us".to_owned(), Json::from_u64(r.queue_us)));
        fields.push(("service_us".to_owned(), Json::from_u64(r.service_us)));
        fields.push(("outcome".to_owned(), Json::Str(r.outcome.to_owned())));
        fields.push(("code".to_owned(), Json::from_u64(r.code)));
        if r.service_us >= self.slow_us {
            fields.push(("slow".to_owned(), Json::Bool(true)));
            if let Some(detail) = r.slow_detail {
                fields.push(("spans".to_owned(), Json::Arr(detail.to_vec())));
            }
        }
        let line = Json::Obj(fields).render();
        if let Ok(mut f) = self.file.lock() {
            let _ = f.write_all(line.as_bytes());
            let _ = f.write_all(b"\n");
        }
    }
}

/// How many raw events [`PhaseCapture`] buffers for slow-query detail.
const CAPTURE_CAP: usize = 256;

/// A per-query sink that measures the paper's cost-model phases.
///
/// Installed for the duration of one `dispatch`, wrapping whatever sink
/// was already current (the operator's `--trace` sink keeps seeing
/// everything). Span ends whose names carry the conventional phase
/// suffixes — `hitset.scan1`, `vertical.derive`, … — are accumulated per
/// phase; every event is also kept (up to a cap) so a slow query can log
/// its full span detail without anyone having asked in advance.
pub struct PhaseCapture {
    inner: Option<Arc<dyn Sink>>,
    scan1_us: AtomicU64,
    scan2_us: AtomicU64,
    derive_us: AtomicU64,
    events: Mutex<Vec<Json>>,
}

impl PhaseCapture {
    /// A capture forwarding to `inner` (pass
    /// [`ppm_observe::current_sink()`] to tee into the operator's sink).
    pub fn new(inner: Option<Arc<dyn Sink>>) -> PhaseCapture {
        PhaseCapture {
            inner,
            scan1_us: AtomicU64::new(0),
            scan2_us: AtomicU64::new(0),
            derive_us: AtomicU64::new(0),
            events: Mutex::new(Vec::new()),
        }
    }

    /// Accumulated `(scan1, scan2, derive)` µs.
    pub fn phase_us(&self) -> (u64, u64, u64) {
        (
            self.scan1_us.load(Ordering::Relaxed),
            self.scan2_us.load(Ordering::Relaxed),
            self.derive_us.load(Ordering::Relaxed),
        )
    }

    /// The buffered raw events (JSON-lines schema objects).
    pub fn events(&self) -> Vec<Json> {
        self.events.lock().map(|e| e.clone()).unwrap_or_default()
    }
}

impl Sink for PhaseCapture {
    fn record(&self, event: &Event) {
        if let Event::SpanEnd {
            name, elapsed_us, ..
        } = event
        {
            let slot = if name.ends_with(".scan1") {
                Some(&self.scan1_us)
            } else if name.ends_with(".scan2") {
                Some(&self.scan2_us)
            } else if name.ends_with(".derive") {
                Some(&self.derive_us)
            } else {
                None
            };
            if let Some(slot) = slot {
                slot.fetch_add(*elapsed_us, Ordering::Relaxed);
            }
        }
        if let Ok(mut events) = self.events.lock() {
            if events.len() < CAPTURE_CAP {
                events.push(event.to_json());
            }
        }
        if let Some(inner) = &self.inner {
            inner.record(event);
        }
    }
}

impl std::fmt::Debug for PhaseCapture {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (s1, s2, d) = self.phase_us();
        f.debug_struct("PhaseCapture")
            .field("scan1_us", &s1)
            .field("scan2_us", &s2)
            .field("derive_us", &d)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span_end(name: &'static str, elapsed_us: u64) -> Event {
        Event::SpanEnd {
            seq: 1,
            at_us: 0,
            id: 1,
            name,
            elapsed_us,
        }
    }

    #[test]
    fn phase_capture_keys_on_phase_suffixes() {
        let cap = PhaseCapture::new(None);
        cap.record(&span_end("hitset.scan1", 10));
        cap.record(&span_end("hitset.scan2", 20));
        cap.record(&span_end("hitset.derive", 30));
        cap.record(&span_end("vertical.derive", 5));
        cap.record(&span_end("serve.mine", 999)); // no phase suffix
        assert_eq!(cap.phase_us(), (10, 20, 35));
        assert_eq!(cap.events().len(), 5, "every event buffered");
    }

    #[test]
    fn phase_capture_forwards_to_the_inner_sink() {
        let collector = Arc::new(ppm_observe::Collector::new());
        let cap = PhaseCapture::new(Some(collector.clone()));
        cap.record(&span_end("hitset.scan1", 7));
        assert_eq!(cap.phase_us().0, 7);
        assert_eq!(collector.events().len(), 1, "inner sink still sees it");
    }

    #[test]
    fn summary_json_reports_the_quantile_family() {
        let mut h = Histogram::with_default_precision();
        for v in 1..=100u64 {
            h.record(v);
        }
        let s = summary_json(&h);
        assert_eq!(s.get("count").and_then(Json::as_u64), Some(100));
        assert_eq!(s.get("max_us").and_then(Json::as_u64), Some(100));
        let p50 = s.get("p50_us").and_then(Json::as_u64).unwrap();
        let p99 = s.get("p99_us").and_then(Json::as_u64).unwrap();
        assert!((50..=52).contains(&p50), "p50 ~50, got {p50}");
        assert!(p99 >= 99, "p99 >= 99, got {p99}");
    }

    #[test]
    fn exposition_has_buckets_sums_and_quantile_gauges() {
        let m = ServeMetrics::new();
        for v in [10u64, 100, 1000, 10_000] {
            m.queue_wait_us.record(v);
            m.service_us.record(v * 2);
        }
        m.served.fetch_add(4, Ordering::Relaxed);
        let cache = CacheStats::default();
        let text = prometheus_text(&m, &cache, 3, 1);
        assert!(text.contains("# TYPE ppm_serve_queue_wait_us histogram"));
        assert!(text.contains("ppm_serve_stores_quarantined 1"));
        assert!(text.contains("ppm_serve_conn_reaped_total 0"));
        assert!(text.contains("ppm_serve_cache_evictions_total 0"));
        assert!(text.contains("ppm_serve_queue_wait_us_bucket{le=\"+Inf\"} 4"));
        assert!(text.contains("ppm_serve_queue_wait_us_count 4"));
        assert!(text.contains("ppm_serve_service_us_p95 "));
        assert!(text.contains("ppm_serve_service_us_p50 "));
        assert!(text.contains("ppm_serve_served_total 4"));
        assert!(text.contains("ppm_serve_stores 3"));
        // Buckets are cumulative and end at the total count.
        let last_bucket = text
            .lines()
            .rfind(|l| l.starts_with("ppm_serve_queue_wait_us_bucket{le=\"+Inf\""))
            .unwrap();
        assert!(last_bucket.ends_with(" 4"));
    }

    #[test]
    fn access_log_writes_parseable_lines_and_flags_slow_queries() {
        let dir = std::env::temp_dir().join(format!("ppm-alog-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("access.jsonl");
        let log = AccessLog::open(&path, 5_000).unwrap();
        log.log(
            1,
            &AccessRecord {
                op: "mine",
                store: Some("smoke"),
                fingerprint: Some(0xdead_beef),
                period: Some(12),
                engine: Some("hitset"),
                cached: Some("miss"),
                queue_us: 40,
                service_us: 900,
                outcome: "ok",
                code: 0,
                slow_detail: None,
            },
        );
        let detail = vec![span_end("hitset.scan1", 9_000).to_json()];
        log.log(
            2,
            &AccessRecord {
                op: "mine",
                store: Some("smoke"),
                fingerprint: None,
                period: Some(12),
                engine: Some("vertical"),
                cached: None,
                queue_us: 0,
                service_us: 9_500,
                outcome: "error",
                code: 3,
                slow_detail: Some(&detail),
            },
        );
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<Json> = text.lines().map(|l| Json::parse(l).unwrap()).collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0].get("cached").and_then(Json::as_str), Some("miss"));
        assert_eq!(
            lines[0].get("fingerprint").and_then(Json::as_str),
            Some("00000000deadbeef")
        );
        assert!(lines[0].get("slow").is_none(), "fast query not flagged");
        assert_eq!(lines[1].get("slow"), Some(&Json::Bool(true)));
        assert_eq!(
            lines[1]
                .get("spans")
                .and_then(Json::as_arr)
                .map(|a| a.len()),
            Some(1),
            "slow query carries span detail"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
