//! The error-code taxonomy shared by the daemon wire protocol and the CLI.
//!
//! One numbering, two surfaces: the daemon reports these codes in `error`
//! frames (`code` field) and the CLI maps its own failures — and any
//! daemon error a `ppm query` relays — onto the same numbers as process
//! exit codes. Scripts can therefore branch on a single documented
//! taxonomy whether they drive the binary or the socket.

use std::fmt;

/// The shared failure taxonomy. The discriminant *is* both the wire code
/// and the process exit code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// Unclassified failure: I/O, corruption, audit violations, panics.
    Internal = 1,
    /// Bad invocation or malformed request: unknown op/store/flag,
    /// unsupported protocol version.
    Usage = 2,
    /// A resource guard (deadline / tree budget) tripped; the carried
    /// result is partial but its stats are sound.
    PartialResult = 3,
    /// Mining completed but quarantined malformed instants; reported
    /// counts are sound lower bounds, not exact.
    Quarantined = 4,
    /// A transient I/O failure survived every configured retry.
    RetriesExhausted = 5,
    /// The daemon's admission queue was full; retry after the hinted
    /// backoff.
    Overloaded = 6,
}

impl ErrorCode {
    /// The process exit code this maps to.
    pub fn exit_code(self) -> i32 {
        self as i32
    }

    /// The wire representation (the `code` field of an `error` frame).
    pub fn wire(self) -> u64 {
        self as u64
    }

    /// Parses a wire code; unknown codes collapse to [`Self::Internal`]
    /// so a newer daemon never makes an older client panic.
    pub fn from_wire(code: u64) -> ErrorCode {
        match code {
            2 => ErrorCode::Usage,
            3 => ErrorCode::PartialResult,
            4 => ErrorCode::Quarantined,
            5 => ErrorCode::RetriesExhausted,
            6 => ErrorCode::Overloaded,
            _ => ErrorCode::Internal,
        }
    }

    /// The stable lowercase name used in logs and traces.
    pub fn name(self) -> &'static str {
        match self {
            ErrorCode::Internal => "internal",
            ErrorCode::Usage => "usage",
            ErrorCode::PartialResult => "partial-result",
            ErrorCode::Quarantined => "quarantined",
            ErrorCode::RetriesExhausted => "retries-exhausted",
            ErrorCode::Overloaded => "overloaded",
        }
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (code {})", self.name(), self.wire())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_round_trip_the_wire() {
        for code in [
            ErrorCode::Internal,
            ErrorCode::Usage,
            ErrorCode::PartialResult,
            ErrorCode::Quarantined,
            ErrorCode::RetriesExhausted,
            ErrorCode::Overloaded,
        ] {
            assert_eq!(ErrorCode::from_wire(code.wire()), code);
            assert_eq!(code.exit_code() as u64, code.wire());
        }
        // Unknown wire codes degrade to Internal, never panic.
        assert_eq!(ErrorCode::from_wire(0), ErrorCode::Internal);
        assert_eq!(ErrorCode::from_wire(99), ErrorCode::Internal);
    }

    #[test]
    fn display_names_the_code() {
        assert_eq!(ErrorCode::Overloaded.to_string(), "overloaded (code 6)");
    }
}
