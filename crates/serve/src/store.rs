//! The daemon's hot-store registry: validated `.ppmc` loads kept open for
//! the process lifetime and shared read-only across every worker.
//!
//! Each store is one [`ColumnarReader`]; queries borrow its
//! [`EncodedSeriesView`] concurrently with zero copying (the reader is
//! immutable after load, so sharing needs no locks). Stores are addressed
//! by their file stem — `trades.ppmc` serves as `"trades"` — and each
//! carries the content fingerprint the result cache keys on.
//!
//! ## Health gating
//!
//! Each store also carries a health bit. [`StoreRegistry::reverify`]
//! re-opens every backing file, re-running the full trailer-checksum
//! validation, and compares the fingerprint against the resident load: a
//! store whose file has vanished, gone corrupt, or been replaced with
//! different content is **quarantined** — queries against it get a typed
//! error while every healthy store keeps serving. A store whose file is
//! restored to the original content heals on the next re-verification.
//! The daemon re-verifies on an interval and on demand via the `health`
//! wire op.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};

use ppm_timeseries::columnar::ColumnarReader;
use ppm_timeseries::EncodedSeriesView;

/// One open store.
#[derive(Debug)]
pub struct Store {
    /// The query-addressable name (the file stem).
    pub name: String,
    /// Where the store was loaded from.
    pub path: PathBuf,
    /// The validated load, shared read-only.
    pub reader: ColumnarReader,
    /// Health bit: `true` once checksum re-verification has failed (and
    /// until a later re-verification succeeds again).
    quarantined: AtomicBool,
}

impl Store {
    /// The borrowed bitmap view queries mine from.
    pub fn view(&self) -> EncodedSeriesView<'_> {
        self.reader.view()
    }

    /// The store's content fingerprint (see
    /// [`ColumnarReader::fingerprint`]).
    pub fn fingerprint(&self) -> u64 {
        self.reader.fingerprint()
    }

    /// Whether the last checksum re-verification failed.
    pub fn is_quarantined(&self) -> bool {
        self.quarantined.load(Ordering::SeqCst)
    }

    /// Re-validates the backing file: a full checksummed re-open whose
    /// fingerprint must match the resident load. Updates the health bit
    /// and returns the verdict (`Ok` = healthy). The resident reader is
    /// untouched either way — quarantine gates *serving*, not memory.
    pub fn reverify(&self) -> Result<(), String> {
        let verdict = match ColumnarReader::open(&self.path) {
            Err(e) => Err(format!("re-open failed: {e}")),
            Ok(fresh) if fresh.fingerprint() != self.fingerprint() => Err(format!(
                "fingerprint changed on disk: resident {:016x}, file {:016x}",
                self.fingerprint(),
                fresh.fingerprint()
            )),
            Ok(_) => Ok(()),
        };
        let was = self.quarantined.swap(verdict.is_err(), Ordering::SeqCst);
        match (&verdict, was) {
            (Err(why), false) => ppm_observe::mark("serve.store.quarantined", || {
                format!("store {} quarantined: {why}", self.name)
            }),
            (Ok(()), true) => ppm_observe::mark("serve.store.healed", || {
                format!("store {} healed by re-verification", self.name)
            }),
            _ => {}
        }
        verdict
    }
}

/// Every store the daemon serves, loaded and checksum-verified at startup.
#[derive(Debug)]
pub struct StoreRegistry {
    stores: Vec<Store>,
}

impl StoreRegistry {
    /// Opens every path, validating each as a `.ppmc` store. Fails fast on
    /// the first unopenable store or duplicate name — a daemon that
    /// silently served a subset would mask a deployment error.
    pub fn open(paths: &[impl AsRef<Path>]) -> Result<Self, String> {
        if paths.is_empty() {
            return Err("no stores given: pass at least one .ppmc path".into());
        }
        let mut stores: Vec<Store> = Vec::with_capacity(paths.len());
        for p in paths {
            let path = p.as_ref().to_path_buf();
            let name = path
                .file_stem()
                .and_then(|s| s.to_str())
                .filter(|s| !s.is_empty())
                .ok_or_else(|| format!("store path {} has no usable file stem", path.display()))?
                .to_owned();
            if stores.iter().any(|s| s.name == name) {
                return Err(format!(
                    "duplicate store name {name:?} ({})",
                    path.display()
                ));
            }
            let reader = ColumnarReader::open(&path)
                .map_err(|e| format!("cannot open store {}: {e}", path.display()))?;
            stores.push(Store {
                name,
                path,
                reader,
                quarantined: AtomicBool::new(false),
            });
        }
        Ok(StoreRegistry { stores })
    }

    /// Re-verifies every store (see [`Store::reverify`]); returns the
    /// number currently quarantined.
    pub fn reverify_all(&self) -> usize {
        self.stores.iter().filter(|s| s.reverify().is_err()).count()
    }

    /// How many stores are currently quarantined.
    pub fn quarantined_count(&self) -> usize {
        self.stores.iter().filter(|s| s.is_quarantined()).count()
    }

    /// The store named `name`, if loaded.
    pub fn get(&self, name: &str) -> Option<&Store> {
        self.stores.iter().find(|s| s.name == name)
    }

    /// Iterates every loaded store.
    pub fn iter(&self) -> impl Iterator<Item = &Store> {
        self.stores.iter()
    }

    /// Number of loaded stores.
    pub fn len(&self) -> usize {
        self.stores.len()
    }

    /// Whether the registry is empty (never true for a constructed one).
    pub fn is_empty(&self) -> bool {
        self.stores.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppm_timeseries::columnar::write_columnar;
    use ppm_timeseries::{FeatureCatalog, SeriesBuilder};

    fn sample_store(tag: &str) -> PathBuf {
        let mut cat = FeatureCatalog::new();
        let a = cat.intern("alpha");
        let mut b = SeriesBuilder::new();
        for _ in 0..6 {
            b.push_instant([a]);
            b.push_instant([]);
        }
        let path =
            std::env::temp_dir().join(format!("ppm-serve-store-{}-{tag}.ppmc", std::process::id()));
        write_columnar(&path, &b.finish(), &cat).unwrap();
        path
    }

    #[test]
    fn registry_addresses_stores_by_stem() {
        let path = sample_store("stem");
        let reg = StoreRegistry::open(&[&path]).unwrap();
        assert_eq!(reg.len(), 1);
        let name = path.file_stem().unwrap().to_str().unwrap();
        let store = reg.get(name).unwrap();
        assert_eq!(store.reader.len(), 12);
        assert!(reg.get("nope").is_none());
        assert!(!reg.is_empty());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn corrupting_the_file_quarantines_and_restoring_heals() {
        let path = sample_store("health");
        let reg = StoreRegistry::open(&[&path]).unwrap();
        let store = reg.iter().next().unwrap();
        assert!(!store.is_quarantined());
        assert_eq!(reg.reverify_all(), 0, "pristine file verifies clean");

        let good = std::fs::read(&path).unwrap();
        let mut bad = good.clone();
        let mid = bad.len() / 2;
        bad[mid] ^= 0xff;
        std::fs::write(&path, &bad).unwrap();
        assert_eq!(reg.reverify_all(), 1, "corrupt file quarantines");
        assert!(store.is_quarantined());
        assert_eq!(reg.quarantined_count(), 1);
        // The resident view still works — quarantine gates serving only.
        assert_eq!(store.reader.len(), 12);

        std::fs::write(&path, &good).unwrap();
        assert_eq!(reg.reverify_all(), 0, "restored file heals");
        assert!(!store.is_quarantined());

        std::fs::remove_file(&path).ok();
        assert_eq!(reg.reverify_all(), 1, "vanished file quarantines");
    }

    #[test]
    fn duplicate_names_and_missing_files_fail_fast() {
        let path = sample_store("dup");
        let err = StoreRegistry::open(&[&path, &path]).unwrap_err();
        assert!(err.contains("duplicate store name"), "{err}");
        let err = StoreRegistry::open(&["/nonexistent/missing.ppmc"]).unwrap_err();
        assert!(err.contains("cannot open store"), "{err}");
        let empty: [&str; 0] = [];
        let err = StoreRegistry::open(&empty).unwrap_err();
        assert!(err.contains("no stores"), "{err}");
        std::fs::remove_file(path).ok();
    }
}
