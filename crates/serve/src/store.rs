//! The daemon's hot-store registry: validated `.ppmc` loads kept open for
//! the process lifetime and shared read-only across every worker.
//!
//! Each store is one [`ColumnarReader`]; queries borrow its
//! [`EncodedSeriesView`] concurrently with zero copying (the reader is
//! immutable after load, so sharing needs no locks). Stores are addressed
//! by their file stem — `trades.ppmc` serves as `"trades"` — and each
//! carries the content fingerprint the result cache keys on.

use std::path::{Path, PathBuf};

use ppm_timeseries::columnar::ColumnarReader;
use ppm_timeseries::EncodedSeriesView;

/// One open store.
#[derive(Debug)]
pub struct Store {
    /// The query-addressable name (the file stem).
    pub name: String,
    /// Where the store was loaded from.
    pub path: PathBuf,
    /// The validated load, shared read-only.
    pub reader: ColumnarReader,
}

impl Store {
    /// The borrowed bitmap view queries mine from.
    pub fn view(&self) -> EncodedSeriesView<'_> {
        self.reader.view()
    }

    /// The store's content fingerprint (see
    /// [`ColumnarReader::fingerprint`]).
    pub fn fingerprint(&self) -> u64 {
        self.reader.fingerprint()
    }
}

/// Every store the daemon serves, loaded and checksum-verified at startup.
#[derive(Debug)]
pub struct StoreRegistry {
    stores: Vec<Store>,
}

impl StoreRegistry {
    /// Opens every path, validating each as a `.ppmc` store. Fails fast on
    /// the first unopenable store or duplicate name — a daemon that
    /// silently served a subset would mask a deployment error.
    pub fn open(paths: &[impl AsRef<Path>]) -> Result<Self, String> {
        if paths.is_empty() {
            return Err("no stores given: pass at least one .ppmc path".into());
        }
        let mut stores: Vec<Store> = Vec::with_capacity(paths.len());
        for p in paths {
            let path = p.as_ref().to_path_buf();
            let name = path
                .file_stem()
                .and_then(|s| s.to_str())
                .filter(|s| !s.is_empty())
                .ok_or_else(|| format!("store path {} has no usable file stem", path.display()))?
                .to_owned();
            if stores.iter().any(|s| s.name == name) {
                return Err(format!(
                    "duplicate store name {name:?} ({})",
                    path.display()
                ));
            }
            let reader = ColumnarReader::open(&path)
                .map_err(|e| format!("cannot open store {}: {e}", path.display()))?;
            stores.push(Store { name, path, reader });
        }
        Ok(StoreRegistry { stores })
    }

    /// The store named `name`, if loaded.
    pub fn get(&self, name: &str) -> Option<&Store> {
        self.stores.iter().find(|s| s.name == name)
    }

    /// Iterates every loaded store.
    pub fn iter(&self) -> impl Iterator<Item = &Store> {
        self.stores.iter()
    }

    /// Number of loaded stores.
    pub fn len(&self) -> usize {
        self.stores.len()
    }

    /// Whether the registry is empty (never true for a constructed one).
    pub fn is_empty(&self) -> bool {
        self.stores.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppm_timeseries::columnar::write_columnar;
    use ppm_timeseries::{FeatureCatalog, SeriesBuilder};

    fn sample_store(tag: &str) -> PathBuf {
        let mut cat = FeatureCatalog::new();
        let a = cat.intern("alpha");
        let mut b = SeriesBuilder::new();
        for _ in 0..6 {
            b.push_instant([a]);
            b.push_instant([]);
        }
        let path =
            std::env::temp_dir().join(format!("ppm-serve-store-{}-{tag}.ppmc", std::process::id()));
        write_columnar(&path, &b.finish(), &cat).unwrap();
        path
    }

    #[test]
    fn registry_addresses_stores_by_stem() {
        let path = sample_store("stem");
        let reg = StoreRegistry::open(&[&path]).unwrap();
        assert_eq!(reg.len(), 1);
        let name = path.file_stem().unwrap().to_str().unwrap();
        let store = reg.get(name).unwrap();
        assert_eq!(store.reader.len(), 12);
        assert!(reg.get("nope").is_none());
        assert!(!reg.is_empty());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn duplicate_names_and_missing_files_fail_fast() {
        let path = sample_store("dup");
        let err = StoreRegistry::open(&[&path, &path]).unwrap_err();
        assert!(err.contains("duplicate store name"), "{err}");
        let err = StoreRegistry::open(&["/nonexistent/missing.ppmc"]).unwrap_err();
        assert!(err.contains("cannot open store"), "{err}");
        let empty: [&str; 0] = [];
        let err = StoreRegistry::open(&empty).unwrap_err();
        assert!(err.contains("no stores"), "{err}");
        std::fs::remove_file(path).ok();
    }
}
