//! Chaos soak: the failover client against replicas behind a seeded
//! chaos proxy, through a replica kill and a quarantined store.
//!
//! The invariants under test are the PR's acceptance bar: every client
//! query eventually succeeds with rows byte-identical to mining the
//! store directly, the surviving daemon's panic count stays zero, and
//! the bounded result cache never exceeds its entry cap.

use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::thread;
use std::time::Duration;

use ppm_observe::Json;
use ppm_serve::chaos::{ChaosConfig, ChaosProxy};
use ppm_serve::client::{normalized, Endpoint, FailoverClient, RetryPolicy};
use ppm_serve::protocol::{read_frame, write_frame, VERSION};
use ppm_serve::server::{Bind, BoundAddr, ServeConfig, Server};
use ppm_serve::StoreRegistry;
use ppm_timeseries::columnar::{write_columnar, ColumnarReader};
use ppm_timeseries::{FeatureCatalog, SeriesBuilder};

fn sample_series() -> (ppm_timeseries::FeatureSeries, FeatureCatalog) {
    let mut catalog = FeatureCatalog::new();
    let a = catalog.intern("alpha");
    let b = catalog.intern("beta");
    let mut builder = SeriesBuilder::new();
    for j in 0..30 {
        builder.push_instant([a]);
        builder.push_instant(if j % 3 != 0 { vec![b] } else { vec![] });
        builder.push_instant([]);
    }
    (builder.finish(), catalog)
}

fn sample_store(tag: &str) -> PathBuf {
    let (series, catalog) = sample_series();
    let path = std::env::temp_dir().join(format!("ppm-chaos-{}-{tag}.ppmc", std::process::id()));
    write_columnar(&path, &series, &catalog).unwrap();
    path
}

/// Writes the sample store under `dir` with a fixed file stem, so two
/// daemons can serve the *same store name* from *different files*.
fn replica_store(dir_tag: &str) -> PathBuf {
    let (series, catalog) = sample_series();
    let dir = std::env::temp_dir().join(format!("ppm-chaos-{}-{dir_tag}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("replica.ppmc");
    write_columnar(&path, &series, &catalog).unwrap();
    path
}

struct Daemon {
    addr: std::net::SocketAddr,
    handle: Option<thread::JoinHandle<()>>,
    stop: std::sync::Arc<std::sync::atomic::AtomicBool>,
}

impl Daemon {
    fn start(store: &PathBuf, tweak: impl FnOnce(&mut ServeConfig)) -> Daemon {
        let registry = StoreRegistry::open(&[store]).unwrap();
        let mut config = ServeConfig::new(Bind::Tcp("127.0.0.1:0".into()));
        tweak(&mut config);
        let server = Server::bind(registry, config).unwrap();
        let addr = match server.local_addr() {
            BoundAddr::Tcp(a) => *a,
            BoundAddr::Unix(_) => unreachable!("bound tcp"),
        };
        let stop = server.stop_handle();
        let handle = thread::spawn(move || server.run().unwrap());
        Daemon {
            addr,
            handle: Some(handle),
            stop,
        }
    }

    /// Hard stop: flip the flag and wait for the accept loop to exit.
    /// From the client's point of view the replica is simply gone.
    fn kill(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            h.join().unwrap();
        }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        self.kill();
    }
}

fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Obj(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
}

fn mine_req(store: &str, period: u64, conf: f64, engine: &str) -> Json {
    obj(vec![
        ("v", Json::from_u64(VERSION)),
        ("op", Json::Str("mine".into())),
        ("store", Json::Str(store.into())),
        ("period", Json::from_u64(period)),
        ("min_conf", Json::Num(conf)),
        ("engine", Json::Str(engine.into())),
        ("limit", Json::from_u64(100)),
    ])
}

fn raw_request(addr: std::net::SocketAddr, req: &Json) -> Json {
    let mut conn = TcpStream::connect(addr).unwrap();
    conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    write_frame(&mut conn, req).unwrap();
    read_frame(&mut conn).unwrap().expect("a response frame")
}

fn direct_rows(store: &PathBuf, period: usize, conf: f64, engine: &str) -> Vec<(String, u64)> {
    let reader = ColumnarReader::open(store).unwrap();
    let config = ppm_core::MineConfig::new(conf).unwrap();
    let result = match engine {
        "apriori" => ppm_core::apriori::mine_view(reader.view(), period, &config),
        "vertical" => ppm_core::vertical::mine_vertical_view(reader.view(), period, &config),
        _ => ppm_core::hitset::mine_view(reader.view(), period, &config),
    }
    .unwrap();
    let mut rows: Vec<_> = result.frequent.iter().collect();
    rows.sort_by(|a, b| {
        b.letters
            .len()
            .cmp(&a.letters.len())
            .then(b.count.cmp(&a.count))
    });
    rows.into_iter()
        .map(|fp| {
            (
                ppm_core::Pattern::from_letter_set(&result.alphabet, &fp.letters)
                    .display(reader.catalog())
                    .to_string(),
                fp.count,
            )
        })
        .collect()
}

fn response_rows(resp: &Json) -> Vec<(String, u64)> {
    resp.get("rows")
        .and_then(Json::as_arr)
        .unwrap()
        .iter()
        .map(|row| {
            let cells = row.as_arr().unwrap();
            (
                cells[0].as_str().unwrap().to_owned(),
                cells[2].as_u64().unwrap(),
            )
        })
        .collect()
}

/// The headline soak: two replicas of one store, replica A reachable
/// only through a seeded chaos proxy, replica A killed mid-load — and
/// every single query still returns rows byte-identical to a direct
/// mine, with zero panics on the survivor and the cache under bound.
#[test]
fn failover_survives_chaos_and_a_replica_kill() {
    const CACHE_CAP: usize = 4;
    let store = sample_store("failover");
    let name = store.file_stem().unwrap().to_str().unwrap().to_owned();
    let mut a = Daemon::start(&store, |c| c.cache_limits.max_entries = CACHE_CAP);
    let b = Daemon::start(&store, |c| c.cache_limits.max_entries = CACHE_CAP);

    // Replica A is only reachable through the proxy; with fault-percent
    // 80 most connections to it are disturbed (delayed, truncated,
    // corrupted, duplicated, or severed) on a schedule fixed by the seed.
    let proxy = ChaosProxy::bind(
        "127.0.0.1:0",
        &a.addr.to_string(),
        ChaosConfig {
            seed: 0xC4405,
            fault_percent: 80,
            delay_ms: 20,
        },
    )
    .unwrap();
    let proxy_addr = proxy.local_addr();
    let proxy_stop = proxy.stop_handle();
    let proxy_thread = thread::spawn(move || proxy.run().unwrap());

    let mut client = FailoverClient::new(
        vec![
            Endpoint::Tcp(proxy_addr.to_string()),
            Endpoint::Tcp(b.addr.to_string()),
        ],
        RetryPolicy {
            retries: 6,
            backoff_ms: 5,
            backoff_max_ms: 50,
            io_timeout_ms: 2_000,
            hedge_after_ms: None,
            seed: 0x5eed,
        },
    );

    // More distinct (engine, period, conf) shapes than cache slots, so
    // eviction must actually run for the bound to hold.
    let mut shapes = Vec::new();
    for engine in ["hitset", "apriori", "vertical"] {
        for period in [2u64, 3, 5] {
            shapes.push((engine, period, 0.5f64));
        }
    }
    for (i, (engine, period, conf)) in shapes.iter().enumerate() {
        // Kill replica A mid-load: from here on only B answers, and the
        // client must carry every remaining query over to it.
        if i == shapes.len() / 2 {
            a.kill();
        }
        let resp = client
            .request(&mine_req(&name, *period, *conf, engine))
            .unwrap_or_else(|e| panic!("query {i} ({engine}/{period}) failed: {e}"));
        assert_eq!(
            resp.get("type").and_then(Json::as_str),
            Some("result"),
            "query {i}: {resp:?}"
        );
        assert_eq!(
            response_rows(&resp),
            direct_rows(&store, *period as usize, *conf, engine),
            "query {i} ({engine}/{period}) must be byte-identical to direct mining"
        );
    }
    assert!(
        client.stats().failovers >= 1,
        "the kill must have forced at least one failover: {:?}",
        client.stats()
    );

    // The survivor took the load without a single contained panic, and
    // its bounded cache held the line.
    let stats = raw_request(
        b.addr,
        &obj(vec![
            ("v", Json::from_u64(VERSION)),
            ("op", Json::Str("stats".into())),
        ]),
    );
    assert_eq!(
        stats.get("panics").and_then(Json::as_u64),
        Some(0),
        "{stats:?}"
    );
    let cache = stats.get("cache").unwrap();
    let entries = cache.get("entries").and_then(Json::as_u64).unwrap() as usize;
    assert!(entries <= CACHE_CAP, "cache over bound: {cache:?}");
    assert!(
        cache.get("evictions").and_then(Json::as_u64).unwrap() >= 1,
        "more shapes than slots must evict: {cache:?}"
    );

    proxy_stop.store(true, Ordering::SeqCst);
    proxy_thread.join().unwrap();
    drop(b);
    std::fs::remove_file(store).ok();
}

/// A quarantined store is replica-local: the client routes around it to
/// a replica whose copy of the same store is healthy.
#[test]
fn quarantined_store_fails_over_to_a_healthy_replica() {
    let store_a = replica_store("qa");
    let store_b = replica_store("qb");
    let a = Daemon::start(&store_a, |c| c.verify_interval_ms = 0);
    let b = Daemon::start(&store_b, |c| c.verify_interval_ms = 0);

    // Rot replica A's file on disk, then force a recheck through the
    // health op: A must report degraded while B stays clean.
    let good = std::fs::read(&store_a).unwrap();
    let mut bad = good.clone();
    let mid = bad.len() / 2;
    bad[mid] ^= 0xff;
    std::fs::write(&store_a, &bad).unwrap();
    let health = raw_request(
        a.addr,
        &obj(vec![
            ("v", Json::from_u64(VERSION)),
            ("op", Json::Str("health".into())),
            ("recheck", Json::Bool(true)),
        ]),
    );
    assert_eq!(
        health.get("degraded"),
        Some(&Json::Bool(true)),
        "{health:?}"
    );
    assert_eq!(
        health.get("stores_quarantined").and_then(Json::as_u64),
        Some(1)
    );

    // Asking A directly gets the typed quarantine error with the
    // replica-local marker the client keys its failover on.
    let direct = raw_request(a.addr, &mine_req("replica", 3, 0.5, "hitset"));
    assert_eq!(direct.get("type").and_then(Json::as_str), Some("error"));
    assert_eq!(direct.get("code").and_then(Json::as_u64), Some(4));
    assert_eq!(
        direct.get("store_quarantined"),
        Some(&Json::Bool(true)),
        "{direct:?}"
    );

    // The failover client prefers A, eats the quarantine error, and
    // completes against B — byte-identical to a direct mine.
    let mut client = FailoverClient::new(
        vec![
            Endpoint::Tcp(a.addr.to_string()),
            Endpoint::Tcp(b.addr.to_string()),
        ],
        RetryPolicy {
            retries: 2,
            backoff_ms: 5,
            backoff_max_ms: 20,
            io_timeout_ms: 2_000,
            hedge_after_ms: None,
            seed: 11,
        },
    );
    let resp = client
        .request(&mine_req("replica", 3, 0.5, "hitset"))
        .unwrap();
    assert_eq!(
        resp.get("type").and_then(Json::as_str),
        Some("result"),
        "{resp:?}"
    );
    assert_eq!(
        response_rows(&resp),
        direct_rows(&store_b, 3, 0.5, "hitset")
    );
    assert!(client.stats().failovers >= 1, "{:?}", client.stats());

    // Healing: restore the file, recheck, and A serves again.
    std::fs::write(&store_a, &good).unwrap();
    let health = raw_request(
        a.addr,
        &obj(vec![
            ("v", Json::from_u64(VERSION)),
            ("op", Json::Str("health".into())),
            ("recheck", Json::Bool(true)),
        ]),
    );
    assert_eq!(
        health.get("degraded"),
        Some(&Json::Bool(false)),
        "{health:?}"
    );
    let resp = raw_request(a.addr, &mine_req("replica", 3, 0.5, "hitset"));
    assert_eq!(
        resp.get("type").and_then(Json::as_str),
        Some("result"),
        "{resp:?}"
    );

    drop(a);
    drop(b);
    std::fs::remove_file(&store_a).ok();
    std::fs::remove_file(&store_b).ok();
}

/// Hedged requests race two replicas and must agree byte-for-byte.
#[test]
fn hedging_races_replicas_and_answers_stay_identical() {
    let store = sample_store("hedge");
    let name = store.file_stem().unwrap().to_str().unwrap().to_owned();
    let a = Daemon::start(&store, |_| {});
    let b = Daemon::start(&store, |_| {});

    // A 1ms hedge threshold all but guarantees the duplicate fires; the
    // straggler-comparison path then checks normalized byte identity on
    // every request that both replicas answer.
    let mut client = FailoverClient::new(
        vec![
            Endpoint::Tcp(a.addr.to_string()),
            Endpoint::Tcp(b.addr.to_string()),
        ],
        RetryPolicy {
            retries: 3,
            backoff_ms: 5,
            backoff_max_ms: 20,
            io_timeout_ms: 2_000,
            hedge_after_ms: Some(1),
            seed: 99,
        },
    );
    let mut last = None;
    for i in 0..6 {
        let resp = client
            .request(&mine_req(&name, 3, 0.5, "vertical"))
            .unwrap_or_else(|e| panic!("hedged query {i} failed: {e}"));
        assert_eq!(
            resp.get("type").and_then(Json::as_str),
            Some("result"),
            "{resp:?}"
        );
        let norm = normalized(&resp);
        if let Some(prev) = &last {
            assert_eq!(&norm, prev, "hedged answers drifted between requests");
        }
        last = Some(norm);
    }
    assert_eq!(
        response_rows(&raw_request(a.addr, &mine_req(&name, 3, 0.5, "vertical"))),
        direct_rows(&store, 3, 0.5, "vertical"),
    );
    assert!(
        client.stats().hedges >= 1,
        "a 1ms threshold should have hedged at least once: {:?}",
        client.stats()
    );

    drop(a);
    drop(b);
    std::fs::remove_file(store).ok();
}
