//! Fault-injected soak: concurrent clients, guard trips, contained
//! panics, overload shedding, graceful drain, and warm-cache restart —
//! all against a real in-process daemon on a loopback socket.

use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::thread;
use std::time::Duration;

use ppm_observe::Json;
use ppm_serve::protocol::{read_frame, write_frame, VERSION};
use ppm_serve::server::{Bind, BoundAddr, ServeConfig, Server};
use ppm_serve::StoreRegistry;
use ppm_timeseries::columnar::{write_columnar, ColumnarReader};
use ppm_timeseries::{FeatureCatalog, SeriesBuilder};

/// The CLI testsuite's sample series: period 3, alpha always at offset 0,
/// beta at offset 1 in two thirds of segments.
fn sample_store(tag: &str) -> PathBuf {
    let mut catalog = FeatureCatalog::new();
    let a = catalog.intern("alpha");
    let b = catalog.intern("beta");
    let mut builder = SeriesBuilder::new();
    for j in 0..30 {
        builder.push_instant([a]);
        builder.push_instant(if j % 3 != 0 { vec![b] } else { vec![] });
        builder.push_instant([]);
    }
    let path = std::env::temp_dir().join(format!("ppm-soak-{}-{tag}.ppmc", std::process::id()));
    write_columnar(&path, &builder.finish(), &catalog).unwrap();
    path
}

fn serve_config(bind: Bind) -> ServeConfig {
    let mut config = ServeConfig::new(bind);
    config.test_faults = true;
    config
}

/// Starts a daemon on a fresh loopback port; returns (address, run-thread,
/// stop-handle).
fn start(
    store: &PathBuf,
    tweak: impl FnOnce(&mut ServeConfig),
) -> (
    std::net::SocketAddr,
    thread::JoinHandle<()>,
    std::sync::Arc<std::sync::atomic::AtomicBool>,
) {
    let registry = StoreRegistry::open(&[store]).unwrap();
    let mut config = serve_config(Bind::Tcp("127.0.0.1:0".into()));
    tweak(&mut config);
    let server = Server::bind(registry, config).unwrap();
    let addr = match server.local_addr() {
        BoundAddr::Tcp(a) => *a,
        BoundAddr::Unix(_) => unreachable!("bound tcp"),
    };
    let stop = server.stop_handle();
    let handle = thread::spawn(move || server.run().unwrap());
    (addr, handle, stop)
}

fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Obj(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
}

fn mine_req(store: &str, period: u64, conf: f64, engine: &str) -> Json {
    obj(vec![
        ("v", Json::from_u64(VERSION)),
        ("op", Json::Str("mine".into())),
        ("store", Json::Str(store.into())),
        ("period", Json::from_u64(period)),
        ("min_conf", Json::Num(conf)),
        ("engine", Json::Str(engine.into())),
        ("limit", Json::from_u64(100)),
    ])
}

fn request(addr: std::net::SocketAddr, req: &Json) -> Json {
    let mut conn = TcpStream::connect(addr).unwrap();
    write_frame(&mut conn, req).unwrap();
    read_frame(&mut conn).unwrap().expect("a response frame")
}

/// The daemon's rows for a clean mine must be bit-identical to mining the
/// store directly (CLI report order: letters desc, then count desc).
fn direct_rows(store: &PathBuf, period: usize, conf: f64, engine: &str) -> Vec<(String, u64)> {
    let reader = ColumnarReader::open(store).unwrap();
    let config = ppm_core::MineConfig::new(conf).unwrap();
    let result = match engine {
        "apriori" => ppm_core::apriori::mine_view(reader.view(), period, &config),
        "vertical" => ppm_core::vertical::mine_vertical_view(reader.view(), period, &config),
        _ => ppm_core::hitset::mine_view(reader.view(), period, &config),
    }
    .unwrap();
    let mut rows: Vec<_> = result.frequent.iter().collect();
    rows.sort_by(|a, b| {
        b.letters
            .len()
            .cmp(&a.letters.len())
            .then(b.count.cmp(&a.count))
    });
    rows.into_iter()
        .map(|fp| {
            (
                ppm_core::Pattern::from_letter_set(&result.alphabet, &fp.letters)
                    .display(reader.catalog())
                    .to_string(),
                fp.count,
            )
        })
        .collect()
}

fn response_rows(resp: &Json) -> Vec<(String, u64)> {
    resp.get("rows")
        .and_then(Json::as_arr)
        .unwrap()
        .iter()
        .map(|row| {
            let cells = row.as_arr().unwrap();
            (
                cells[0].as_str().unwrap().to_owned(),
                cells[2].as_u64().unwrap(),
            )
        })
        .collect()
}

fn shutdown_req() -> Json {
    obj(vec![
        ("v", Json::from_u64(VERSION)),
        ("op", Json::Str("shutdown".into())),
    ])
}

#[test]
fn concurrent_clients_get_bit_identical_answers() {
    let store = sample_store("concurrent");
    let name = store.file_stem().unwrap().to_str().unwrap().to_owned();
    let (addr, handle, _stop) = start(&store, |c| c.workers = 4);

    // 9 concurrent clients: 3 engines x 3 periods, every one checked
    // against a direct mine of the same store.
    let mut clients = Vec::new();
    for engine in ["hitset", "apriori", "vertical"] {
        for period in [2u64, 3, 5] {
            let store = store.clone();
            let name = name.clone();
            clients.push(thread::spawn(move || {
                let resp = request(addr, &mine_req(&name, period, 0.5, engine));
                assert_eq!(
                    resp.get("type").unwrap().as_str(),
                    Some("result"),
                    "{engine}/{period}"
                );
                assert_eq!(
                    response_rows(&resp),
                    direct_rows(&store, period as usize, 0.5, engine),
                    "{engine} period {period} must be bit-identical to direct mining"
                );
            }));
        }
    }
    for c in clients {
        c.join().unwrap();
    }

    request(addr, &shutdown_req());
    handle.join().unwrap();
    std::fs::remove_file(store).ok();
}

#[test]
fn guard_trips_and_panics_are_contained_per_query() {
    let store = sample_store("faults");
    let name = store.file_stem().unwrap().to_str().unwrap().to_owned();
    let (addr, handle, _stop) = start(&store, |c| c.workers = 2);

    // A zero deadline trips the guard: typed code 3 with partial stats.
    let mut req = mine_req(&name, 3, 0.6, "hitset");
    if let Json::Obj(fields) = &mut req {
        fields.push(("deadline_ms".into(), Json::from_u64(0)));
    }
    let resp = request(addr, &req);
    assert_eq!(resp.get("type").unwrap().as_str(), Some("error"));
    assert_eq!(resp.get("code").unwrap().as_u64(), Some(3));
    assert!(resp.get("partial_stats").is_some(), "{resp:?}");

    // An injected panic is contained to an error response...
    let resp = request(
        addr,
        &obj(vec![
            ("v", Json::from_u64(VERSION)),
            ("op", Json::Str("panic".into())),
        ]),
    );
    assert_eq!(resp.get("type").unwrap().as_str(), Some("error"));
    assert_eq!(resp.get("code").unwrap().as_u64(), Some(1));
    let message = resp.get("message").unwrap().as_str().unwrap();
    assert!(message.contains("panicked"), "{message}");

    // ...and the daemon keeps serving correct answers afterwards.
    let resp = request(addr, &mine_req(&name, 3, 0.6, "hitset"));
    assert_eq!(resp.get("type").unwrap().as_str(), Some("result"));
    assert_eq!(response_rows(&resp), direct_rows(&store, 3, 0.6, "hitset"));

    // The stats op counted the contained panic.
    let resp = request(
        addr,
        &obj(vec![
            ("v", Json::from_u64(VERSION)),
            ("op", Json::Str("stats".into())),
        ]),
    );
    assert_eq!(resp.get("panics").unwrap().as_u64(), Some(1));

    request(addr, &shutdown_req());
    handle.join().unwrap();
    std::fs::remove_file(store).ok();
}

#[test]
fn overload_sheds_with_an_explicit_retry_hint() {
    let store = sample_store("overload");
    let (addr, handle, stop) = start(&store, |c| {
        c.workers = 1;
        c.queue_cap = 1;
        c.retry_after_ms = 37;
    });

    // Occupy the single worker with a connection that never sends a frame
    // (it blocks in the read until its timeout), then flood the admission
    // queue; everything past the one queued slot must be shed.
    let blocker = TcpStream::connect(addr).unwrap();
    thread::sleep(Duration::from_millis(100));
    let mut sheds = 0;
    let mut conns = Vec::new();
    for _ in 0..12 {
        let mut conn = TcpStream::connect(addr).unwrap();
        conn.set_read_timeout(Some(Duration::from_millis(500)))
            .unwrap();
        match read_frame(&mut conn) {
            Ok(Some(resp)) if resp.get("type").unwrap().as_str() == Some("overload") => {
                assert_eq!(resp.get("retry_after_ms").unwrap().as_u64(), Some(37));
                sheds += 1;
            }
            // Admitted connections see no frame until they send a request;
            // the read times out. Keep them open so the queue stays full.
            _ => conns.push(conn),
        }
    }
    assert!(sheds >= 10, "expected most of 12 floods shed, got {sheds}");

    drop(blocker);
    drop(conns);
    stop.store(true, Ordering::SeqCst);
    handle.join().unwrap();
    std::fs::remove_file(store).ok();
}

#[test]
fn cache_survives_restart_and_derives_tighter_confidences() {
    let store = sample_store("warmcache");
    let name = store.file_stem().unwrap().to_str().unwrap().to_owned();
    let cache = std::env::temp_dir().join(format!("ppm-soak-cache-{}.jsonl", std::process::id()));
    std::fs::remove_file(&cache).ok();

    // Lifecycle 1: cold mine, then graceful shutdown flushes the cache.
    let cache_path = cache.clone();
    let (addr, handle, _stop) = start(&store, move |c| c.cache_path = Some(cache_path));
    let resp = request(addr, &mine_req(&name, 3, 0.5, "hitset"));
    assert_eq!(resp.get("cached").unwrap().as_str(), Some("miss"));
    let cold_rows = response_rows(&resp);
    request(addr, &shutdown_req());
    handle.join().unwrap();
    assert!(cache.exists(), "graceful shutdown must flush the cache");

    // Lifecycle 2 (as after a restart): the same query is a warm hit with
    // identical rows, and a *tighter* confidence is answered by
    // anti-monotone filtering without re-mining.
    let cache_path = cache.clone();
    let (addr, handle, _stop) = start(&store, move |c| c.cache_path = Some(cache_path));
    let resp = request(addr, &mine_req(&name, 3, 0.5, "hitset"));
    assert_eq!(resp.get("cached").unwrap().as_str(), Some("hit"));
    assert_eq!(response_rows(&resp), cold_rows);

    let resp = request(addr, &mine_req(&name, 3, 0.9, "hitset"));
    assert_eq!(resp.get("cached").unwrap().as_str(), Some("derived"));
    assert_eq!(
        response_rows(&resp),
        direct_rows(&store, 3, 0.9, "hitset"),
        "derived rows must equal a direct mine at the tighter confidence"
    );

    request(addr, &shutdown_req());
    handle.join().unwrap();
    std::fs::remove_file(store).ok();
    std::fs::remove_file(cache).ok();
}

#[test]
fn stats_and_metrics_expose_real_latency_histograms() {
    let store = sample_store("latency");
    let name = store.file_stem().unwrap().to_str().unwrap().to_owned();
    let pid = std::process::id();
    let metrics_path = std::env::temp_dir().join(format!("ppm-soak-metrics-{pid}.prom"));
    let access_path = std::env::temp_dir().join(format!("ppm-soak-access-{pid}.jsonl"));
    std::fs::remove_file(&metrics_path).ok();
    std::fs::remove_file(&access_path).ok();
    let (m, a) = (metrics_path.clone(), access_path.clone());
    let (addr, handle, _stop) = start(&store, move |c| {
        c.workers = 2;
        c.metrics_out = Some(m);
        c.access_log = Some(a);
        c.slow_ms = Some(0); // everything is "slow": every line carries spans
    });

    for period in [2u64, 3, 5] {
        let resp = request(addr, &mine_req(&name, period, 0.5, "vertical"));
        assert_eq!(resp.get("type").unwrap().as_str(), Some("result"));
    }

    // The stats op reports the histograms the daemon actually recorded.
    let resp = request(
        addr,
        &obj(vec![
            ("v", Json::from_u64(VERSION)),
            ("op", Json::Str("stats".into())),
        ]),
    );
    let latency = resp.get("latency").expect("stats carries latency");
    for hist in ["queue_wait", "service"] {
        let h = latency.get(hist).unwrap();
        assert!(
            h.get("count").unwrap().as_u64().unwrap() >= 3,
            "{hist}: {h:?}"
        );
        let q = |k: &str| h.get(k).unwrap().as_u64().unwrap();
        assert!(q("p50_us") <= q("p95_us"), "{hist}: {h:?}");
        assert!(q("p95_us") <= q("p99_us"), "{hist}: {h:?}");
        assert!(q("p99_us") <= q("max_us"), "{hist}: {h:?}");
    }
    // Vertical mines ran, so the scan1 phase histogram has samples too.
    assert!(
        latency
            .get("scan1")
            .unwrap()
            .get("count")
            .unwrap()
            .as_u64()
            .unwrap()
            >= 3,
        "{latency:?}"
    );

    // The metrics op returns the same state as Prometheus exposition.
    let resp = request(
        addr,
        &obj(vec![
            ("v", Json::from_u64(VERSION)),
            ("op", Json::Str("metrics".into())),
        ]),
    );
    let text = resp
        .get("exposition")
        .and_then(Json::as_str)
        .expect("exposition text");
    for needle in [
        "ppm_serve_served_total",
        "ppm_serve_queue_wait_us_bucket{le=\"",
        "ppm_serve_queue_wait_us_count",
        "ppm_serve_service_us_p50",
        "ppm_serve_service_us_p95",
        "ppm_serve_service_us_p99",
        "ppm_serve_phase_scan1_us_count",
        "ppm_serve_queue_depth",
    ] {
        assert!(text.contains(needle), "missing {needle} in:\n{text}");
    }

    request(addr, &shutdown_req());
    handle.join().unwrap();

    // Shutdown published a final exposition file atomically.
    let published = std::fs::read_to_string(&metrics_path).unwrap();
    assert!(published.contains("ppm_serve_served_total"), "{published}");

    // Every access-log line is parseable JSON with the fixed fields; the
    // slow-ms 0 threshold forces span detail onto each mine line.
    let log = std::fs::read_to_string(&access_path).unwrap();
    let mut mines = 0;
    for line in log.lines() {
        let rec = Json::parse(line).expect("access line parses");
        assert!(rec.get("op").is_some(), "{line}");
        assert!(rec.get("outcome").is_some(), "{line}");
        assert!(rec.get("service_us").is_some(), "{line}");
        if rec.get("op").unwrap().as_str() == Some("mine") {
            mines += 1;
            assert_eq!(rec.get("outcome").unwrap().as_str(), Some("ok"), "{line}");
            assert_eq!(rec.get("slow"), Some(&Json::Bool(true)), "{line}");
            assert!(rec.get("spans").is_some(), "{line}");
        }
    }
    assert_eq!(mines, 3, "{log}");

    std::fs::remove_file(store).ok();
    std::fs::remove_file(metrics_path).ok();
    std::fs::remove_file(access_path).ok();
}

#[test]
fn flight_dumps_are_parseable_json_lines() {
    let store = sample_store("flight");
    let name = store.file_stem().unwrap().to_str().unwrap().to_owned();
    let flight = std::env::temp_dir().join(format!("ppm-soak-flight-{}.jsonl", std::process::id()));
    std::fs::remove_file(&flight).ok();
    let f = flight.clone();
    let (addr, handle, _stop) = start(&store, move |c| c.flight_path = Some(f));

    // Real traffic first, so the rings hold request events.
    let resp = request(addr, &mine_req(&name, 3, 0.5, "hitset"));
    assert_eq!(resp.get("type").unwrap().as_str(), Some("result"));

    // A contained panic dumps the recorder before the error response is
    // written, so the file is complete once the client sees the error.
    let resp = request(
        addr,
        &obj(vec![
            ("v", Json::from_u64(VERSION)),
            ("op", Json::Str("panic".into())),
        ]),
    );
    assert_eq!(resp.get("type").unwrap().as_str(), Some("error"));
    let dump = std::fs::read_to_string(&flight).unwrap();
    let header = Json::parse(dump.lines().next().unwrap()).unwrap();
    assert_eq!(header.get("kind").unwrap().as_str(), Some("flight_dump"));
    assert_eq!(header.get("reason").unwrap().as_str(), Some("panic"));
    let events: Vec<Json> = dump
        .lines()
        .skip(1)
        .map(|l| Json::parse(l).expect("event line parses"))
        .collect();
    assert!(!events.is_empty(), "{dump}");
    assert!(
        events
            .iter()
            .any(|e| e.get("name").and_then(Json::as_str) == Some("serve.request")),
        "{dump}"
    );

    // The SIGUSR1 path, driven through the programmatic hook the signal
    // handler uses: the accept loop polls the flag every tick. The flag
    // is process-global, so a concurrently running soak daemon may steal
    // one request — re-arm until OUR daemon's dump lands.
    let mut reason = String::new();
    for _ in 0..200 {
        ppm_serve::signal::request_flight_dump();
        thread::sleep(Duration::from_millis(10));
        if let Ok(dump) = std::fs::read_to_string(&flight) {
            if let Some(first) = dump.lines().next() {
                let header = Json::parse(first).unwrap();
                if header.get("reason").and_then(Json::as_str) == Some("usr1") {
                    reason = "usr1".to_owned();
                    for line in dump.lines().skip(1) {
                        Json::parse(line).expect("usr1 event line parses");
                    }
                    break;
                }
            }
        }
    }
    assert_eq!(reason, "usr1", "accept loop never served the dump request");

    request(addr, &shutdown_req());
    handle.join().unwrap();
    std::fs::remove_file(store).ok();
    std::fs::remove_file(flight).ok();
}

#[test]
fn quarantine_path_reports_injected_garbage() {
    let store = sample_store("quarantine");
    let name = store.file_stem().unwrap().to_str().unwrap().to_owned();
    let (addr, handle, _stop) = start(&store, |_| {});

    let mut req = mine_req(&name, 3, 0.6, "hitset");
    if let Json::Obj(fields) = &mut req {
        fields.push(("quarantine".into(), Json::Bool(true)));
        fields.push(("inject_garbage".into(), Json::from_u64(1)));
    }
    let resp = request(addr, &req);
    assert_eq!(
        resp.get("type").unwrap().as_str(),
        Some("result"),
        "{resp:?}"
    );
    assert_eq!(resp.get("quarantined").unwrap().as_u64(), Some(1));
    assert_eq!(resp.get("cached").unwrap().as_str(), Some("bypass"));

    request(addr, &shutdown_req());
    handle.join().unwrap();
    std::fs::remove_file(store).ok();
}
