//! Wire-protocol fuzzing: hostile bytes against a live daemon.
//!
//! Every malformed thing a peer can put on the socket — oversized and
//! garbage length prefixes, truncated headers, mid-frame EOF, control
//! characters and invalid UTF-8, lying length fields, idle stalls and
//! slow-loris drips — must produce a typed error or a clean close,
//! never a hang, and never a panic. After every abuse the daemon keeps
//! answering real queries correctly.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::thread;
use std::time::{Duration, Instant};

use ppm_observe::Json;
use ppm_serve::protocol::{read_frame, write_frame, MAX_FRAME, VERSION};
use ppm_serve::server::{Bind, BoundAddr, ServeConfig, Server};
use ppm_serve::StoreRegistry;
use ppm_timeseries::columnar::write_columnar;
use ppm_timeseries::{FeatureCatalog, SeriesBuilder};

fn sample_store(tag: &str) -> PathBuf {
    let mut catalog = FeatureCatalog::new();
    let a = catalog.intern("alpha");
    let b = catalog.intern("beta");
    let mut builder = SeriesBuilder::new();
    for j in 0..30 {
        builder.push_instant([a]);
        builder.push_instant(if j % 3 != 0 { vec![b] } else { vec![] });
        builder.push_instant([]);
    }
    let path = std::env::temp_dir().join(format!("ppm-fuzz-{}-{tag}.ppmc", std::process::id()));
    write_columnar(&path, &builder.finish(), &catalog).unwrap();
    path
}

fn start(
    store: &PathBuf,
    tweak: impl FnOnce(&mut ServeConfig),
) -> (
    std::net::SocketAddr,
    thread::JoinHandle<()>,
    std::sync::Arc<std::sync::atomic::AtomicBool>,
) {
    let registry = StoreRegistry::open(&[store]).unwrap();
    let mut config = ServeConfig::new(Bind::Tcp("127.0.0.1:0".into()));
    tweak(&mut config);
    let server = Server::bind(registry, config).unwrap();
    let addr = match server.local_addr() {
        BoundAddr::Tcp(a) => *a,
        BoundAddr::Unix(_) => unreachable!("bound tcp"),
    };
    let stop = server.stop_handle();
    let handle = thread::spawn(move || server.run().unwrap());
    (addr, handle, stop)
}

fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Obj(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
}

fn op_req(op: &str) -> Json {
    obj(vec![
        ("v", Json::from_u64(VERSION)),
        ("op", Json::Str(op.into())),
    ])
}

fn request(addr: std::net::SocketAddr, req: &Json) -> Json {
    let mut conn = TcpStream::connect(addr).unwrap();
    conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    write_frame(&mut conn, req).unwrap();
    read_frame(&mut conn).unwrap().expect("a response frame")
}

/// Sends raw bytes, then reads whatever comes back until EOF (bounded).
/// Returns the parsed response frame if the daemon sent one.
fn send_raw(addr: std::net::SocketAddr, bytes: &[u8]) -> Option<Json> {
    let mut conn = TcpStream::connect(addr).unwrap();
    conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    conn.write_all(bytes).unwrap();
    conn.flush().unwrap();
    let resp = read_frame(&mut conn).ok().flatten();
    // Whatever happened, the daemon must close; a hang here fails the
    // test by timeout rather than blocking forever.
    let mut rest = Vec::new();
    let _ = conn.take(64 * 1024).read_to_end(&mut rest);
    resp
}

fn frame_bytes(payload: &[u8]) -> Vec<u8> {
    let mut b = (payload.len() as u32).to_le_bytes().to_vec();
    b.extend_from_slice(payload);
    b
}

fn assert_usage_error(resp: &Option<Json>, what: &str) {
    let resp = resp
        .as_ref()
        .unwrap_or_else(|| panic!("{what}: daemon closed without a typed error"));
    assert_eq!(
        resp.get("type").and_then(Json::as_str),
        Some("error"),
        "{what}: {resp:?}"
    );
    assert_eq!(
        resp.get("code").and_then(Json::as_u64),
        Some(2),
        "{what}: {resp:?}"
    );
    let message = resp.get("message").and_then(Json::as_str).unwrap();
    assert!(message.contains("bad frame"), "{what}: {message}");
}

#[test]
fn malformed_frames_get_typed_errors_and_clean_closes() {
    let store = sample_store("malformed");
    let name = store.file_stem().unwrap().to_str().unwrap().to_owned();
    let (addr, handle, _stop) = start(&store, |_| {});

    // Oversized length prefix: one past the frame cap.
    let oversized = ((MAX_FRAME as u32) + 1).to_le_bytes().to_vec();
    assert_usage_error(&send_raw(addr, &oversized), "oversized length");

    // Garbage length prefix: all ones, ~4 GiB.
    assert_usage_error(&send_raw(addr, &u32::MAX.to_le_bytes()), "garbage length");

    // Control characters and invalid UTF-8 where JSON should be.
    assert_usage_error(
        &send_raw(addr, &frame_bytes(&[0x00, 0x01, 0x02, 0xff, 0xfe, 0x07])),
        "control chars",
    );

    // A length field that lies: 5 bytes declared, so the JSON object is
    // cut off mid-token and cannot parse.
    let mut lying = frame_bytes(br#"{"v":1,"op":"stats"}"#);
    lying[..4].copy_from_slice(&5u32.to_le_bytes());
    assert_usage_error(&send_raw(addr, &lying), "length mismatch");

    // Valid UTF-8 that is not JSON at all.
    assert_usage_error(&send_raw(addr, &frame_bytes(b"not json")), "non-json");

    // Truncated header: two of four length bytes, then EOF. The daemon
    // just closes — nothing useful to say to a vanished peer.
    assert_eq!(send_raw(addr, &[0x10, 0x00]), None, "truncated header");

    // Mid-frame EOF: header promises 100 bytes, 10 arrive.
    let mut partial = 100u32.to_le_bytes().to_vec();
    partial.extend_from_slice(&[b'{'; 10]);
    assert_eq!(send_raw(addr, &partial), None, "mid-frame EOF");

    // After all that abuse: zero panics, every malformed frame counted,
    // and real queries still answer correctly.
    let resp = request(
        addr,
        &obj(vec![
            ("v", Json::from_u64(VERSION)),
            ("op", Json::Str("mine".into())),
            ("store", Json::Str(name)),
            ("period", Json::from_u64(3)),
            ("min_conf", Json::Num(0.5)),
        ]),
    );
    assert_eq!(
        resp.get("type").and_then(Json::as_str),
        Some("result"),
        "{resp:?}"
    );

    let stats = request(addr, &op_req("stats"));
    assert_eq!(stats.get("panics").and_then(Json::as_u64), Some(0));
    assert!(
        stats.get("bad_frames").and_then(Json::as_u64).unwrap() >= 5,
        "{stats:?}"
    );

    request(addr, &op_req("shutdown"));
    handle.join().unwrap();
    std::fs::remove_file(store).ok();
}

#[test]
fn idle_connections_are_reaped() {
    let store = sample_store("idle");
    let (addr, handle, _stop) = start(&store, |c| c.idle_timeout_ms = 100);

    // Connect and say nothing. The daemon must hang up on us, not hold
    // a worker hostage.
    let mut conn = TcpStream::connect(addr).unwrap();
    conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let started = Instant::now();
    let mut buf = [0u8; 16];
    let n = conn.read(&mut buf).unwrap_or(0);
    assert_eq!(n, 0, "idle connection must be closed, not written to");
    assert!(
        started.elapsed() < Duration::from_secs(3),
        "reap took {:?}",
        started.elapsed()
    );

    let stats = request(addr, &op_req("stats"));
    assert!(
        stats.get("conn_reaped").and_then(Json::as_u64).unwrap() >= 1,
        "{stats:?}"
    );
    assert_eq!(stats.get("panics").and_then(Json::as_u64), Some(0));

    request(addr, &op_req("shutdown"));
    handle.join().unwrap();
    std::fs::remove_file(store).ok();
}

#[test]
fn slow_loris_drip_cannot_hold_a_worker_past_the_frame_deadline() {
    let store = sample_store("loris");
    let (addr, handle, _stop) = start(&store, |c| {
        c.frame_deadline_ms = 300;
        c.idle_timeout_ms = 10_000; // only the in-frame deadline may trip
    });

    // Promise a plausible frame, then drip one byte at a time — each
    // write inside any naive per-read timeout, but the *total* far past
    // the frame deadline.
    let mut conn = TcpStream::connect(addr).unwrap();
    conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    conn.write_all(&200u32.to_le_bytes()).unwrap();
    let started = Instant::now();
    let mut cut_off = false;
    for _ in 0..100 {
        thread::sleep(Duration::from_millis(40));
        if conn.write_all(b"{").and_then(|()| conn.flush()).is_err() {
            cut_off = true;
            break;
        }
        // The close may also surface as EOF on the read side first.
        conn.set_read_timeout(Some(Duration::from_millis(1)))
            .unwrap();
        if matches!(conn.read(&mut [0u8; 8]), Ok(0)) {
            cut_off = true;
            break;
        }
    }
    assert!(cut_off, "drip-feeding was never cut off");
    assert!(
        started.elapsed() < Duration::from_secs(3),
        "cut-off took {:?}, deadline is 300ms",
        started.elapsed()
    );

    let stats = request(addr, &op_req("stats"));
    assert!(
        stats.get("conn_reaped").and_then(Json::as_u64).unwrap() >= 1,
        "{stats:?}"
    );
    assert_eq!(stats.get("panics").and_then(Json::as_u64), Some(0));

    request(addr, &op_req("shutdown"));
    handle.join().unwrap();
    std::fs::remove_file(store).ok();
}

#[test]
fn request_budget_closes_chatty_connections_politely() {
    let store = sample_store("budget");
    let (addr, handle, _stop) = start(&store, |c| c.max_requests_per_conn = 2);

    let mut conn = TcpStream::connect(addr).unwrap();
    conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    for i in 0..2 {
        write_frame(&mut conn, &op_req("stats")).unwrap();
        let resp = read_frame(&mut conn).unwrap().expect("budgeted response");
        assert_eq!(
            resp.get("type").and_then(Json::as_str),
            Some("result"),
            "req {i}"
        );
    }
    // The third request on the same connection meets a closed socket
    // (either the write or the read notices). A fresh connection works.
    let third = write_frame(&mut conn, &op_req("stats"))
        .and_then(|()| read_frame(&mut conn))
        .ok()
        .flatten();
    assert!(third.is_none(), "{third:?}");
    let resp = request(addr, &op_req("stats"));
    assert_eq!(resp.get("type").and_then(Json::as_str), Some("result"));

    request(addr, &op_req("shutdown"));
    handle.join().unwrap();
    std::fs::remove_file(store).ok();
}
