//! Turning an event log into human- and machine-readable reports:
//! span trees, per-phase aggregates, and mark counts.

use std::collections::BTreeMap;

use crate::event::Event;
use crate::json::Json;

/// Aggregate timing for all spans sharing one name ("phase").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseAgg {
    /// The span name.
    pub name: &'static str,
    /// How many spans with this name completed.
    pub calls: u64,
    /// Summed wall-clock across those spans, microseconds.
    pub total_us: u64,
    /// The slowest single span, microseconds.
    pub max_us: u64,
}

impl PhaseAgg {
    /// Encodes the aggregate as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("name".to_owned(), Json::Str(self.name.to_owned())),
            ("calls".to_owned(), Json::from_u64(self.calls)),
            ("total_us".to_owned(), Json::from_u64(self.total_us)),
            ("max_us".to_owned(), Json::from_u64(self.max_us)),
        ])
    }
}

/// Aggregates completed spans by name, in order of first completion.
pub fn aggregate_phases(events: &[Event]) -> Vec<PhaseAgg> {
    let mut order: Vec<&'static str> = Vec::new();
    let mut by_name: BTreeMap<&'static str, PhaseAgg> = BTreeMap::new();
    for event in events {
        if let Event::SpanEnd {
            name, elapsed_us, ..
        } = event
        {
            let agg = by_name.entry(name).or_insert_with(|| {
                order.push(name);
                PhaseAgg {
                    name,
                    calls: 0,
                    total_us: 0,
                    max_us: 0,
                }
            });
            agg.calls += 1;
            agg.total_us += elapsed_us;
            agg.max_us = agg.max_us.max(*elapsed_us);
        }
    }
    order.into_iter().map(|n| by_name[n].clone()).collect()
}

/// Counts marks by name, name-sorted.
pub fn mark_counts(events: &[Event]) -> BTreeMap<&'static str, u64> {
    let mut counts = BTreeMap::new();
    for event in events {
        if let Event::Mark { name, .. } = event {
            *counts.entry(*name).or_insert(0) += 1;
        }
    }
    counts
}

/// Formats microseconds for humans: `987us`, `12.3ms`, `4.56s`.
pub fn format_us(us: u64) -> String {
    if us < 1_000 {
        format!("{us}us")
    } else if us < 1_000_000 {
        format!("{:.1}ms", us as f64 / 1_000.0)
    } else {
        format!("{:.2}s", us as f64 / 1_000_000.0)
    }
}

/// Renders the span tree of an event log as indented text, one line per
/// span in start order, with durations; marks appear inline at their span
/// depth. Spans still open at the end of the log render with `…` instead
/// of a duration.
pub fn span_tree(events: &[Event]) -> String {
    // id -> elapsed for completed spans.
    let mut elapsed: BTreeMap<u64, u64> = BTreeMap::new();
    for event in events {
        if let Event::SpanEnd { id, elapsed_us, .. } = event {
            elapsed.insert(*id, *elapsed_us);
        }
    }
    // Depth per span id, derived from parent links.
    let mut depth: BTreeMap<u64, usize> = BTreeMap::new();
    let mut out = String::new();
    // Marks are attributed to the most recently started, still-open span
    // (a simple linear replay of open/close records).
    let mut open: Vec<u64> = Vec::new();
    for event in events {
        match event {
            Event::SpanStart {
                id, parent, name, ..
            } => {
                let d = parent
                    .and_then(|p| depth.get(&p).copied())
                    .map_or(0, |d| d + 1);
                depth.insert(*id, d);
                open.push(*id);
                let dur = elapsed
                    .get(id)
                    .map_or_else(|| "…".to_owned(), |&us| format_us(us));
                out.push_str(&format!("{}{name}  {dur}\n", "  ".repeat(d)));
            }
            Event::SpanEnd { id, .. } => {
                open.retain(|&o| o != *id);
            }
            Event::Mark { name, detail, .. } => {
                let d = open
                    .last()
                    .and_then(|id| depth.get(id).copied())
                    .map_or(0, |d| d + 1);
                out.push_str(&format!("{}! {name}: {detail}\n", "  ".repeat(d)));
            }
            _ => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn start(seq: u64, id: u64, parent: Option<u64>, name: &'static str) -> Event {
        Event::SpanStart {
            seq,
            at_us: seq,
            id,
            parent,
            name,
        }
    }

    fn end(seq: u64, id: u64, name: &'static str, elapsed_us: u64) -> Event {
        Event::SpanEnd {
            seq,
            at_us: seq,
            id,
            name,
            elapsed_us,
        }
    }

    #[test]
    fn phases_aggregate_by_name() {
        let events = vec![
            start(1, 1, None, "mine"),
            start(2, 2, Some(1), "level"),
            end(3, 2, "level", 10),
            start(4, 3, Some(1), "level"),
            end(5, 3, "level", 30),
            end(6, 1, "mine", 50),
        ];
        let phases = aggregate_phases(&events);
        assert_eq!(phases.len(), 2);
        assert_eq!(phases[0].name, "level");
        assert_eq!(phases[0].calls, 2);
        assert_eq!(phases[0].total_us, 40);
        assert_eq!(phases[0].max_us, 30);
        assert_eq!(phases[1].name, "mine");
        let json = phases[0].to_json();
        assert_eq!(json.get("calls").unwrap().as_u64(), Some(2));
    }

    #[test]
    fn tree_indents_children_and_marks() {
        let events = vec![
            start(1, 1, None, "mine"),
            start(2, 2, Some(1), "scan1"),
            end(3, 2, "scan1", 7),
            Event::Mark {
                seq: 4,
                at_us: 4,
                name: "note",
                detail: "x".into(),
            },
            end(5, 1, "mine", 20),
        ];
        let tree = span_tree(&events);
        let lines: Vec<&str> = tree.lines().collect();
        assert_eq!(lines[0], "mine  20us");
        assert_eq!(lines[1], "  scan1  7us");
        assert_eq!(lines[2], "  ! note: x");
    }

    #[test]
    fn unfinished_spans_render_ellipsis() {
        let events = vec![start(1, 1, None, "mine")];
        assert_eq!(span_tree(&events), "mine  …\n");
    }

    #[test]
    fn mark_counts_tally() {
        let events = vec![
            Event::Mark {
                seq: 1,
                at_us: 1,
                name: "retry",
                detail: String::new(),
            },
            Event::Mark {
                seq: 2,
                at_us: 2,
                name: "retry",
                detail: String::new(),
            },
        ];
        assert_eq!(mark_counts(&events).get("retry"), Some(&2));
    }

    #[test]
    fn human_durations() {
        assert_eq!(format_us(12), "12us");
        assert_eq!(format_us(12_345), "12.3ms");
        assert_eq!(format_us(4_560_000), "4.56s");
    }
}
