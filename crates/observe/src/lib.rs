//! # ppm-observe — zero-dependency tracing & metrics for the mining stack
//!
//! The paper's §3 cost analysis is stated in *observable* quantities —
//! series scans, candidate counts, hit-set sizes — and the miners already
//! tally those into `MiningStats`. This crate adds the missing dimension:
//! **where the wall-clock went**, as structured spans, counters, gauges
//! and point events ([`Event`]) flowing into pluggable [`Sink`]s.
//!
//! ## Design
//!
//! * **Context, not globals.** An observability context ([`install`]) is
//!   attached to the *current thread*; instrumented code reports through
//!   free functions ([`span`], [`counter`], [`gauge`], [`mark`]) that are
//!   no-ops when no context is attached. This keeps concurrently running
//!   mines (and concurrently running tests) fully isolated while costing
//!   the uninstrumented hot path one thread-local lookup per batched
//!   call site.
//! * **Explicit propagation to workers.** Thread-parallel miners capture
//!   [`current`] before spawning and [`attach`] inside each worker, so
//!   worker spans land in the same sink — nested under the span that was
//!   open at capture time.
//! * **Cheap by construction.** Hot loops batch counter increments
//!   (e.g. one event per 1024 segments); spans cost two events each;
//!   everything is dropped at the sink boundary when observability is off.
//!
//! ## Quickstart
//!
//! ```
//! use std::sync::Arc;
//! use ppm_observe::{self as observe, Collector};
//!
//! let collector = Arc::new(Collector::new());
//! {
//!     let _obs = observe::install(collector.clone());
//!     let _outer = observe::span("demo.outer");
//!     observe::counter("demo.items", 3);
//!     observe::mark("demo.note", || "something happened".into());
//! }
//! assert_eq!(collector.counter_total("demo.items"), 3);
//! assert_eq!(collector.finished_span_names(), vec!["demo.outer"]);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod event;
pub mod flight;
pub mod histogram;
pub mod json;
pub mod render;
pub mod sink;

pub use event::Event;
pub use flight::{FlightEvent, FlightKind, FlightRecorder, NameId};
pub use histogram::{AtomicHistogram, Histogram};
pub use json::{Json, JsonError};
pub use render::{aggregate_phases, format_us, mark_counts, span_tree, PhaseAgg};
pub use sink::{Collector, Fanout, HumanReporter, JsonLinesSink, NoopSink, Sink};

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// The shared state behind one observability session: the sink plus the
/// clocks and id generators every attached thread draws from.
struct Ctx {
    sink: Arc<dyn Sink>,
    epoch: Instant,
    seq: AtomicU64,
    next_span: AtomicU64,
}

impl Ctx {
    fn emit(&self, event: Event) {
        self.sink.record(&event);
    }

    fn next_seq(&self) -> u64 {
        self.seq.fetch_add(1, Ordering::Relaxed)
    }

    fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }
}

/// A cloneable reference to an active observability context, used to carry
/// it across thread boundaries (see [`current`] / [`attach`]).
#[derive(Clone)]
pub struct Handle {
    ctx: Arc<Ctx>,
    parent_span: Option<u64>,
}

impl std::fmt::Debug for Handle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Handle")
            .field("parent_span", &self.parent_span)
            .finish_non_exhaustive()
    }
}

thread_local! {
    static CURRENT: RefCell<Option<Arc<Ctx>>> = const { RefCell::new(None) };
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// Detaches the context (and restores whatever was attached before) when
/// dropped. Returned by [`install`] and [`attach`].
#[must_use = "dropping the guard detaches the observability context"]
pub struct Guard {
    previous_ctx: Option<Arc<Ctx>>,
    previous_stack: Vec<u64>,
}

impl std::fmt::Debug for Guard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Guard").finish_non_exhaustive()
    }
}

impl Drop for Guard {
    fn drop(&mut self) {
        CURRENT.with(|c| *c.borrow_mut() = self.previous_ctx.take());
        SPAN_STACK.with(|s| *s.borrow_mut() = std::mem::take(&mut self.previous_stack));
    }
}

fn swap_in(ctx: Option<Arc<Ctx>>, seed_stack: Vec<u64>) -> Guard {
    let previous_ctx = CURRENT.with(|c| c.borrow_mut().replace_with(ctx));
    let previous_stack = SPAN_STACK.with(|s| std::mem::replace(&mut *s.borrow_mut(), seed_stack));
    Guard {
        previous_ctx,
        previous_stack,
    }
}

trait ReplaceWith<T> {
    fn replace_with(&mut self, value: Option<T>) -> Option<T>;
}

impl<T> ReplaceWith<T> for Option<T> {
    fn replace_with(&mut self, value: Option<T>) -> Option<T> {
        std::mem::replace(self, value)
    }
}

/// Starts a fresh observability session reporting into `sink` and attaches
/// it to the current thread. Sequence numbers, span ids and the timestamp
/// epoch all reset, so runs are reproducible. The session ends (and the
/// previous one, if any, is restored) when the returned [`Guard`] drops.
pub fn install(sink: Arc<dyn Sink>) -> Guard {
    let ctx = Arc::new(Ctx {
        sink,
        epoch: Instant::now(),
        seq: AtomicU64::new(1),
        next_span: AtomicU64::new(1),
    });
    swap_in(Some(ctx), Vec::new())
}

/// The current thread's context (with the innermost open span recorded as
/// the parent for cross-thread nesting), or `None` when observability is
/// off. Capture this before spawning workers and [`attach`] it inside.
pub fn current() -> Option<Handle> {
    CURRENT.with(|c| {
        c.borrow().as_ref().map(|ctx| Handle {
            ctx: ctx.clone(),
            parent_span: SPAN_STACK.with(|s| s.borrow().last().copied()),
        })
    })
}

/// Attaches a captured [`Handle`] to the current thread (typically a
/// worker); spans opened here nest under the span that was open when the
/// handle was captured. `None` attaches nothing and the guard is a no-op
/// beyond restoring the previous state. Detached when the guard drops.
pub fn attach(handle: Option<Handle>) -> Guard {
    match handle {
        Some(h) => swap_in(Some(h.ctx), h.parent_span.into_iter().collect()),
        None => swap_in(None, Vec::new()),
    }
}

/// Whether an observability context is attached to this thread.
pub fn is_active() -> bool {
    CURRENT.with(|c| c.borrow().is_some())
}

/// The sink the current thread reports into, or `None` when
/// observability is off. Lets a caller layer a filtering/teeing sink
/// over whatever is already installed (e.g. the daemon's per-query
/// phase capture forwarding to an operator-configured trace sink).
pub fn current_sink() -> Option<Arc<dyn Sink>> {
    CURRENT.with(|c| c.borrow().as_ref().map(|ctx| ctx.sink.clone()))
}

fn with_ctx(f: impl FnOnce(&Arc<Ctx>)) {
    CURRENT.with(|c| {
        if let Some(ctx) = c.borrow().as_ref() {
            f(ctx);
        }
    });
}

/// Adds `delta` to the named counter. No-op when observability is off —
/// batch increments in hot loops so even the *active* cost stays
/// negligible.
pub fn counter(name: &'static str, delta: u64) {
    if delta == 0 {
        return;
    }
    with_ctx(|ctx| {
        ctx.emit(Event::Counter {
            seq: ctx.next_seq(),
            at_us: ctx.now_us(),
            name,
            delta,
        })
    });
}

/// Sets the named gauge to `value`.
pub fn gauge(name: &'static str, value: u64) {
    with_ctx(|ctx| {
        ctx.emit(Event::Gauge {
            seq: ctx.next_seq(),
            at_us: ctx.now_us(),
            name,
            value,
        })
    });
}

/// Records a point event. The detail closure runs only when observability
/// is on, so call sites pay nothing to format messages that nobody will
/// see.
pub fn mark(name: &'static str, detail: impl FnOnce() -> String) {
    with_ctx(|ctx| {
        ctx.emit(Event::Mark {
            seq: ctx.next_seq(),
            at_us: ctx.now_us(),
            name,
            detail: detail(),
        })
    });
}

/// An open span; closes (emitting [`Event::SpanEnd`] with its wall-clock
/// duration) when dropped. Obtained from [`span`].
#[must_use = "a span measures the scope it is bound to; dropping it immediately closes it"]
pub struct Span {
    inner: Option<SpanInner>,
}

struct SpanInner {
    ctx: Arc<Ctx>,
    id: u64,
    name: &'static str,
    start: Instant,
}

impl std::fmt::Debug for Span {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            Some(s) => write!(f, "Span({} #{})", s.name, s.id),
            None => f.write_str("Span(inactive)"),
        }
    }
}

impl Span {
    /// The span id, if observability is active.
    pub fn id(&self) -> Option<u64> {
        self.inner.as_ref().map(|s| s.id)
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(s) = self.inner.take() {
            SPAN_STACK.with(|stack| {
                let mut stack = stack.borrow_mut();
                if let Some(pos) = stack.iter().rposition(|&id| id == s.id) {
                    stack.remove(pos);
                }
            });
            s.ctx.emit(Event::SpanEnd {
                seq: s.ctx.next_seq(),
                at_us: s.ctx.now_us(),
                id: s.id,
                name: s.name,
                elapsed_us: s.start.elapsed().as_micros() as u64,
            });
        }
    }
}

/// Opens a span named `name`, nested under the innermost span already open
/// on this thread. Returns an inert guard when observability is off.
pub fn span(name: &'static str) -> Span {
    let inner = CURRENT.with(|c| {
        c.borrow().as_ref().map(|ctx| {
            let id = ctx.next_span.fetch_add(1, Ordering::Relaxed);
            let parent = SPAN_STACK.with(|s| {
                let mut s = s.borrow_mut();
                let parent = s.last().copied();
                s.push(id);
                parent
            });
            ctx.emit(Event::SpanStart {
                seq: ctx.next_seq(),
                at_us: ctx.now_us(),
                id,
                parent,
                name,
            });
            SpanInner {
                ctx: ctx.clone(),
                id,
                name,
                start: Instant::now(),
            }
        })
    });
    Span { inner }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inactive_by_default_and_everything_is_a_noop() {
        assert!(!is_active());
        assert!(current().is_none());
        counter("x", 1);
        gauge("g", 2);
        mark("m", || panic!("detail must not be built when inactive"));
        let s = span("s");
        assert_eq!(s.id(), None);
        drop(s);
    }

    #[test]
    fn spans_nest_and_sequence_deterministically() {
        let collector = Arc::new(Collector::new());
        {
            let _obs = install(collector.clone());
            assert!(is_active());
            let outer = span("outer");
            assert_eq!(outer.id(), Some(1));
            {
                let inner = span("inner");
                assert_eq!(inner.id(), Some(2));
                counter("c", 5);
            }
            mark("note", || "after inner".into());
        }
        assert!(!is_active());
        let events = collector.events();
        // Sequence numbers are 1..=N in emission order.
        let seqs: Vec<u64> = events.iter().map(Event::seq).collect();
        assert_eq!(seqs, (1..=seqs.len() as u64).collect::<Vec<_>>());
        // inner's parent is outer; outer has none.
        match &events[0] {
            Event::SpanStart { name, parent, .. } => {
                assert_eq!(*name, "outer");
                assert_eq!(*parent, None);
            }
            other => panic!("expected outer start, got {other:?}"),
        }
        match &events[1] {
            Event::SpanStart { name, parent, .. } => {
                assert_eq!(*name, "inner");
                assert_eq!(*parent, Some(1));
            }
            other => panic!("expected inner start, got {other:?}"),
        }
        assert_eq!(
            collector.finished_span_names(),
            vec!["inner", "outer"],
            "inner closes before outer"
        );
    }

    #[test]
    fn handles_propagate_to_other_threads_with_parenting() {
        let collector = Arc::new(Collector::new());
        let _obs = install(collector.clone());
        let outer = span("outer");
        let outer_id = outer.id().unwrap();
        let handle = current();
        assert!(handle.is_some());
        std::thread::scope(|scope| {
            let h = handle.clone();
            scope
                .spawn(move || {
                    let _g = attach(h);
                    let _s = span("worker");
                })
                .join()
                .unwrap();
        });
        drop(outer);
        let events = collector.events();
        let worker_start = events
            .iter()
            .find_map(|e| match e {
                Event::SpanStart {
                    name: "worker",
                    parent,
                    ..
                } => Some(*parent),
                _ => None,
            })
            .expect("worker span recorded");
        assert_eq!(worker_start, Some(outer_id), "worker nests under outer");
    }

    #[test]
    fn install_restores_previous_context() {
        let a = Arc::new(Collector::new());
        let b = Arc::new(Collector::new());
        let _ga = install(a.clone());
        {
            let _gb = install(b.clone());
            counter("x", 1);
        }
        counter("x", 2);
        assert_eq!(a.counter_total("x"), 2);
        assert_eq!(b.counter_total("x"), 1);
    }

    #[test]
    fn zero_delta_counters_are_suppressed() {
        let collector = Arc::new(Collector::new());
        let _obs = install(collector.clone());
        counter("x", 0);
        assert!(collector.events().is_empty());
    }
}
