//! Pluggable event sinks.
//!
//! A [`Sink`] receives every [`Event`] recorded on contexts it is
//! installed in. Four implementations cover the common shapes:
//!
//! * [`NoopSink`] — swallows everything (useful to measure overhead with
//!   observability structurally on but semantically off);
//! * [`Collector`] — in-memory: keeps the ordered event log plus
//!   aggregated counter totals and gauge maxima, for tests and for
//!   end-of-run reporting;
//! * [`JsonLinesSink`] — streams each event as one JSON object per line to
//!   any writer, aggregating counter totals on the side for the final
//!   summary document;
//! * [`HumanReporter`] — live, human-readable lines (span closes and
//!   marks) to any writer, indentation following span depth.
//!
//! [`Fanout`] composes several sinks behind one handle.

use std::collections::BTreeMap;
use std::io::Write;
use std::sync::{Arc, Mutex};

use crate::event::Event;

/// Receives recorded events. Implementations must be cheap and must not
/// call back into the observability facade (events recorded from inside
/// `record` would deadlock a sink that holds its own lock).
pub trait Sink: Send + Sync {
    /// Handles one event.
    fn record(&self, event: &Event);
}

/// A sink that discards everything.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopSink;

impl Sink for NoopSink {
    fn record(&self, _event: &Event) {}
}

#[derive(Debug, Default)]
struct CollectorState {
    events: Vec<Event>,
    counters: BTreeMap<&'static str, u64>,
    gauge_max: BTreeMap<&'static str, u64>,
}

/// An in-memory sink: the full ordered event log plus counter totals and
/// per-gauge maxima.
#[derive(Debug, Default)]
pub struct Collector {
    state: Mutex<CollectorState>,
}

impl Collector {
    /// An empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// A clone of the ordered event log.
    pub fn events(&self) -> Vec<Event> {
        self.state.lock().expect("collector lock").events.clone()
    }

    /// The aggregated total of one counter (0 if never incremented).
    pub fn counter_total(&self, name: &str) -> u64 {
        *self
            .state
            .lock()
            .expect("collector lock")
            .counters
            .get(name)
            .unwrap_or(&0)
    }

    /// All counter totals, name-sorted.
    pub fn counter_totals(&self) -> BTreeMap<String, u64> {
        self.state
            .lock()
            .expect("collector lock")
            .counters
            .iter()
            .map(|(&k, &v)| (k.to_owned(), v))
            .collect()
    }

    /// The maximum value each gauge ever reported, name-sorted.
    pub fn gauge_maxima(&self) -> BTreeMap<String, u64> {
        self.state
            .lock()
            .expect("collector lock")
            .gauge_max
            .iter()
            .map(|(&k, &v)| (k.to_owned(), v))
            .collect()
    }

    /// Names of completed spans, in completion order.
    pub fn finished_span_names(&self) -> Vec<&'static str> {
        self.state
            .lock()
            .expect("collector lock")
            .events
            .iter()
            .filter_map(|e| match e {
                Event::SpanEnd { name, .. } => Some(*name),
                _ => None,
            })
            .collect()
    }

    /// Names of started spans, in start order.
    pub fn started_span_names(&self) -> Vec<&'static str> {
        self.state
            .lock()
            .expect("collector lock")
            .events
            .iter()
            .filter_map(|e| match e {
                Event::SpanStart { name, .. } => Some(*name),
                _ => None,
            })
            .collect()
    }

    /// `(name, detail)` of every mark, in order.
    pub fn marks(&self) -> Vec<(&'static str, String)> {
        self.state
            .lock()
            .expect("collector lock")
            .events
            .iter()
            .filter_map(|e| match e {
                Event::Mark { name, detail, .. } => Some((*name, detail.clone())),
                _ => None,
            })
            .collect()
    }
}

impl Sink for Collector {
    fn record(&self, event: &Event) {
        let mut state = self.state.lock().expect("collector lock");
        match event {
            Event::Counter { name, delta, .. } => {
                *state.counters.entry(name).or_insert(0) += delta;
            }
            Event::Gauge { name, value, .. } => {
                let slot = state.gauge_max.entry(name).or_insert(0);
                *slot = (*slot).max(*value);
            }
            _ => {}
        }
        state.events.push(event.clone());
    }
}

struct JsonLinesState {
    out: Box<dyn Write + Send>,
    counters: BTreeMap<&'static str, u64>,
    write_error: bool,
}

impl std::fmt::Debug for JsonLinesSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonLinesSink").finish_non_exhaustive()
    }
}

/// Streams events as JSON lines to a writer. Counter events are *not*
/// written per-line (a hot loop can emit thousands); their totals
/// accumulate and can be flushed into the final summary via
/// [`counter_totals`](Self::counter_totals) /
/// [`append_line`](Self::append_line). Write failures flip a sticky flag
/// (surfaced by [`take_write_error`](Self::take_write_error)) instead of
/// panicking inside the instrumented hot path.
pub struct JsonLinesSink {
    state: Mutex<JsonLinesState>,
}

impl JsonLinesSink {
    /// Wraps `out`.
    pub fn new(out: Box<dyn Write + Send>) -> Self {
        JsonLinesSink {
            state: Mutex::new(JsonLinesState {
                out,
                counters: BTreeMap::new(),
                write_error: false,
            }),
        }
    }

    /// Aggregated counter totals seen so far, name-sorted.
    pub fn counter_totals(&self) -> BTreeMap<String, u64> {
        self.state
            .lock()
            .expect("jsonl lock")
            .counters
            .iter()
            .map(|(&k, &v)| (k.to_owned(), v))
            .collect()
    }

    /// Appends one raw line (used for the final summary document) and
    /// flushes.
    pub fn append_line(&self, line: &str) {
        let mut state = self.state.lock().expect("jsonl lock");
        if writeln!(state.out, "{line}").is_err() || state.out.flush().is_err() {
            state.write_error = true;
        }
    }

    /// Whether any write failed since the last call; clears the flag.
    pub fn take_write_error(&self) -> bool {
        let mut state = self.state.lock().expect("jsonl lock");
        std::mem::replace(&mut state.write_error, false)
    }
}

impl Sink for JsonLinesSink {
    fn record(&self, event: &Event) {
        let mut state = self.state.lock().expect("jsonl lock");
        if let Event::Counter { name, delta, .. } = event {
            *state.counters.entry(name).or_insert(0) += delta;
            return;
        }
        let line = event.to_json_line();
        if writeln!(state.out, "{line}").is_err() {
            state.write_error = true;
        }
    }
}

/// Live human-readable reporting: one line per span close and per mark,
/// indented by span depth, written as events arrive.
pub struct HumanReporter {
    state: Mutex<HumanState>,
}

struct HumanState {
    out: Box<dyn Write + Send>,
    depth: usize,
}

impl std::fmt::Debug for HumanReporter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HumanReporter").finish_non_exhaustive()
    }
}

impl HumanReporter {
    /// Wraps `out` (typically stderr).
    pub fn new(out: Box<dyn Write + Send>) -> Self {
        HumanReporter {
            state: Mutex::new(HumanState { out, depth: 0 }),
        }
    }
}

impl Sink for HumanReporter {
    fn record(&self, event: &Event) {
        let mut state = self.state.lock().expect("human lock");
        match event {
            Event::SpanStart { .. } => state.depth += 1,
            Event::SpanEnd {
                name, elapsed_us, ..
            } => {
                state.depth = state.depth.saturating_sub(1);
                let pad = "  ".repeat(state.depth);
                let _ = writeln!(
                    state.out,
                    "{pad}{name}  {}",
                    crate::render::format_us(*elapsed_us)
                );
            }
            Event::Mark { name, detail, .. } => {
                let pad = "  ".repeat(state.depth);
                let _ = writeln!(state.out, "{pad}! {name}: {detail}");
            }
            Event::Counter { .. } | Event::Gauge { .. } => {}
        }
    }
}

/// Broadcasts every event to several sinks, in order.
#[derive(Clone, Default)]
pub struct Fanout {
    sinks: Vec<Arc<dyn Sink>>,
}

impl std::fmt::Debug for Fanout {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Fanout({} sinks)", self.sinks.len())
    }
}

impl Fanout {
    /// An empty fanout (equivalent to [`NoopSink`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a sink.
    pub fn push(mut self, sink: Arc<dyn Sink>) -> Self {
        self.sinks.push(sink);
        self
    }

    /// Number of attached sinks.
    pub fn len(&self) -> usize {
        self.sinks.len()
    }

    /// Whether no sinks are attached.
    pub fn is_empty(&self) -> bool {
        self.sinks.is_empty()
    }
}

impl Sink for Fanout {
    fn record(&self, event: &Event) {
        for sink in &self.sinks {
            sink.record(event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mark(seq: u64, name: &'static str) -> Event {
        Event::Mark {
            seq,
            at_us: seq * 10,
            name,
            detail: format!("d{seq}"),
        }
    }

    #[test]
    fn collector_aggregates_and_preserves_order() {
        let c = Collector::new();
        c.record(&mark(1, "a"));
        c.record(&Event::Counter {
            seq: 2,
            at_us: 20,
            name: "n",
            delta: 3,
        });
        c.record(&Event::Counter {
            seq: 3,
            at_us: 30,
            name: "n",
            delta: 4,
        });
        c.record(&Event::Gauge {
            seq: 4,
            at_us: 40,
            name: "g",
            value: 9,
        });
        c.record(&Event::Gauge {
            seq: 5,
            at_us: 50,
            name: "g",
            value: 2,
        });
        c.record(&mark(6, "b"));
        assert_eq!(c.counter_total("n"), 7);
        assert_eq!(c.counter_total("missing"), 0);
        assert_eq!(c.gauge_maxima().get("g"), Some(&9));
        let marks = c.marks();
        assert_eq!(marks[0].0, "a");
        assert_eq!(marks[1].0, "b");
        assert_eq!(c.events().len(), 6);
    }

    #[test]
    fn jsonl_writes_lines_and_keeps_counter_totals_aside() {
        let buf: Arc<Mutex<Vec<u8>>> = Arc::default();
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let sink = JsonLinesSink::new(Box::new(Shared(buf.clone())));
        sink.record(&mark(1, "a"));
        sink.record(&Event::Counter {
            seq: 2,
            at_us: 20,
            name: "n",
            delta: 5,
        });
        sink.record(&mark(3, "b"));
        sink.append_line("{\"type\":\"summary\"}");
        assert!(!sink.take_write_error());
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3, "counters are aggregated, not written");
        for line in &lines {
            crate::json::Json::parse(line).unwrap();
        }
        assert_eq!(sink.counter_totals().get("n"), Some(&5));
    }

    #[test]
    fn fanout_broadcasts() {
        let a = Arc::new(Collector::new());
        let b = Arc::new(Collector::new());
        let f = Fanout::new()
            .push(a.clone() as Arc<dyn Sink>)
            .push(b.clone() as Arc<dyn Sink>);
        assert_eq!(f.len(), 2);
        assert!(!f.is_empty());
        f.record(&mark(1, "x"));
        assert_eq!(a.marks().len(), 1);
        assert_eq!(b.marks().len(), 1);
    }

    #[test]
    fn human_reporter_indents_by_span_depth() {
        let buf: Arc<Mutex<Vec<u8>>> = Arc::default();
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let sink = HumanReporter::new(Box::new(Shared(buf.clone())));
        sink.record(&Event::SpanStart {
            seq: 1,
            at_us: 0,
            id: 1,
            parent: None,
            name: "outer",
        });
        sink.record(&mark(2, "inside"));
        sink.record(&Event::SpanEnd {
            seq: 3,
            at_us: 100,
            id: 1,
            name: "outer",
            elapsed_us: 100,
        });
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        assert!(text.contains("  ! inside: d2"), "{text}");
        assert!(text.lines().last().unwrap().starts_with("outer"), "{text}");
    }
}
