//! Always-on lock-free flight recorder.
//!
//! A [`FlightRecorder`] keeps the last `N` observability events per
//! worker in fixed pre-allocated ring buffers, so when something goes
//! wrong (a panic is contained, a query is shed, an operator sends
//! `SIGUSR1`) the recent history can be dumped *post hoc* without having
//! observed anything at the time — no re-run, no log level to remember
//! to turn on.
//!
//! Design constraints, in order:
//!
//! 1. **Recording must never block or allocate.** Every slot field is a
//!    plain atomic; a write is a ticket `fetch_add` plus six relaxed
//!    stores. Event names are interned up front ([`register`]) so the
//!    hot path passes a `u32`, not a string.
//! 2. **One writer per ring, by convention.** Each daemon worker owns
//!    ring `i`; the accept loop owns the last ring. The recorder does
//!    not enforce this — two writers on one ring interleave tickets but
//!    never corrupt memory (everything is atomic).
//! 3. **Readers never stop writers.** A dump walks the slots with a
//!    seqlock check: each slot carries a sequence word that is odd while
//!    a write is in flight, so a reader that observes a torn slot simply
//!    skips it. (The sequence check is best-effort — relaxed field
//!    stores can in principle drift past the sequence stores — but a
//!    missed tear yields one garbled diagnostic line, never unsoundness;
//!    the crate stays `forbid(unsafe_code)`.)
//!
//! [`register`]: FlightRecorder::register

use std::io::{self, Write};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Mutex;

use crate::json::Json;

/// Default events retained per ring.
pub const DEFAULT_RING_EVENTS: usize = 256;

/// An interned event-name handle (index into the recorder's name table).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NameId(u32);

/// What a flight-recorder event records. The two payload words `a`/`b`
/// are kind-specific (span id + elapsed, counter delta, gauge value, …).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlightKind {
    /// A span opened; `a` = span id.
    SpanStart,
    /// A span closed; `a` = span id, `b` = elapsed µs.
    SpanEnd,
    /// A counter bump; `a` = delta.
    Counter,
    /// A gauge sample; `a` = value.
    Gauge,
    /// A point-in-time annotation; `a`/`b` free-form.
    Mark,
}

impl FlightKind {
    fn as_u32(self) -> u32 {
        match self {
            FlightKind::SpanStart => 0,
            FlightKind::SpanEnd => 1,
            FlightKind::Counter => 2,
            FlightKind::Gauge => 3,
            FlightKind::Mark => 4,
        }
    }

    fn label(code: u32) -> &'static str {
        match code {
            0 => "span_start",
            1 => "span_end",
            2 => "counter",
            3 => "gauge",
            _ => "mark",
        }
    }
}

/// One pre-allocated event slot. `seq` is `2*ticket + 1` while the
/// writer is filling the slot and `2*ticket + 2` once it is complete;
/// zero means never written.
struct Slot {
    seq: AtomicU64,
    name: AtomicU32,
    kind: AtomicU32,
    at_us: AtomicU64,
    a: AtomicU64,
    b: AtomicU64,
}

impl Slot {
    fn empty() -> Slot {
        Slot {
            seq: AtomicU64::new(0),
            name: AtomicU32::new(0),
            kind: AtomicU32::new(0),
            at_us: AtomicU64::new(0),
            a: AtomicU64::new(0),
            b: AtomicU64::new(0),
        }
    }
}

/// One worker's ring: a ticket counter plus `capacity` slots.
struct Ring {
    head: AtomicU64,
    slots: Vec<Slot>,
}

/// A decoded event from a dump, in ticket order within its ring.
#[derive(Clone, Debug)]
pub struct FlightEvent {
    /// Which ring (worker) recorded it.
    pub ring: usize,
    /// Monotonic per-ring ticket (older events have smaller tickets).
    pub ticket: u64,
    /// Event kind label (`span_start`, `counter`, …).
    pub kind: &'static str,
    /// The interned event name.
    pub name: String,
    /// Recording timestamp, µs since the recorder's owner chose.
    pub at_us: u64,
    /// First payload word (see [`FlightKind`]).
    pub a: u64,
    /// Second payload word (see [`FlightKind`]).
    pub b: u64,
}

/// The flight recorder: `rings` independent ring buffers over an
/// interned name table.
pub struct FlightRecorder {
    names: Mutex<Vec<String>>,
    rings: Vec<Ring>,
    mask: u64,
}

impl FlightRecorder {
    /// A recorder with `rings` rings of `capacity` events each
    /// (`capacity` is rounded up to a power of two, minimum 8).
    pub fn new(rings: usize, capacity: usize) -> FlightRecorder {
        let capacity = capacity.max(8).next_power_of_two();
        FlightRecorder {
            names: Mutex::new(Vec::new()),
            rings: (0..rings.max(1))
                .map(|_| Ring {
                    head: AtomicU64::new(0),
                    slots: (0..capacity).map(|_| Slot::empty()).collect(),
                })
                .collect(),
            mask: capacity as u64 - 1,
        }
    }

    /// Number of rings.
    pub fn rings(&self) -> usize {
        self.rings.len()
    }

    /// Events each ring retains.
    pub fn capacity(&self) -> usize {
        (self.mask + 1) as usize
    }

    /// Interns `name`, returning its handle. Call once per name at
    /// startup — this takes a mutex and may allocate, unlike
    /// [`record`](Self::record).
    pub fn register(&self, name: &str) -> NameId {
        let mut names = self.names.lock().expect("name table poisoned");
        if let Some(i) = names.iter().position(|n| n == name) {
            return NameId(i as u32);
        }
        names.push(name.to_owned());
        NameId((names.len() - 1) as u32)
    }

    /// Records an event on `ring`. Wait-free: one `fetch_add` and six
    /// atomic stores. Out-of-range rings are clamped to the last ring so
    /// a miscounted worker index degrades to sharing, not a panic.
    pub fn record(&self, ring: usize, kind: FlightKind, name: NameId, at_us: u64, a: u64, b: u64) {
        let ring = &self.rings[ring.min(self.rings.len() - 1)];
        let ticket = ring.head.fetch_add(1, Ordering::Relaxed);
        let slot = &ring.slots[(ticket & self.mask) as usize];
        slot.seq.store(2 * ticket + 1, Ordering::Release);
        slot.name.store(name.0, Ordering::Relaxed);
        slot.kind.store(kind.as_u32(), Ordering::Relaxed);
        slot.at_us.store(at_us, Ordering::Relaxed);
        slot.a.store(a, Ordering::Relaxed);
        slot.b.store(b, Ordering::Relaxed);
        slot.seq.store(2 * ticket + 2, Ordering::Release);
    }

    /// Decodes every completed event, per ring in ticket (oldest-first)
    /// order. Slots mid-write or torn during the read are skipped.
    pub fn events(&self) -> Vec<FlightEvent> {
        let names = self.names.lock().expect("name table poisoned");
        let mut out = Vec::new();
        for (ring_idx, ring) in self.rings.iter().enumerate() {
            let mut ring_events = Vec::new();
            for slot in &ring.slots {
                let seq = slot.seq.load(Ordering::Acquire);
                if seq == 0 || seq % 2 == 1 {
                    continue; // never written, or a write in flight
                }
                let name = slot.name.load(Ordering::Relaxed);
                let kind = slot.kind.load(Ordering::Relaxed);
                let at_us = slot.at_us.load(Ordering::Relaxed);
                let a = slot.a.load(Ordering::Relaxed);
                let b = slot.b.load(Ordering::Relaxed);
                if slot.seq.load(Ordering::Acquire) != seq {
                    continue; // torn by a concurrent overwrite
                }
                ring_events.push(FlightEvent {
                    ring: ring_idx,
                    ticket: seq / 2 - 1,
                    kind: FlightKind::label(kind),
                    name: names
                        .get(name as usize)
                        .cloned()
                        .unwrap_or_else(|| format!("name#{name}")),
                    at_us,
                    a,
                    b,
                });
            }
            ring_events.sort_by_key(|e| e.ticket);
            out.extend(ring_events);
        }
        out
    }

    /// Writes every completed event as one JSON object per line:
    /// `{"ring":0,"ticket":41,"kind":"span_end","name":"serve.mine",
    /// "at_us":12345,"a":7,"b":310}`.
    pub fn dump_json_lines(&self, w: &mut dyn Write) -> io::Result<()> {
        for e in self.events() {
            let line = Json::Obj(vec![
                ("ring".to_owned(), Json::from_usize(e.ring)),
                ("ticket".to_owned(), Json::from_u64(e.ticket)),
                ("kind".to_owned(), Json::Str(e.kind.to_owned())),
                ("name".to_owned(), Json::Str(e.name.clone())),
                ("at_us".to_owned(), Json::from_u64(e.at_us)),
                ("a".to_owned(), Json::from_u64(e.a)),
                ("b".to_owned(), Json::from_u64(e.b)),
            ]);
            writeln!(w, "{}", line.render())?;
        }
        Ok(())
    }
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("rings", &self.rings.len())
            .field("capacity", &self.capacity())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_decodes_in_ticket_order() {
        let fr = FlightRecorder::new(2, 8);
        let mine = fr.register("serve.mine");
        let shed = fr.register("serve.shed");
        assert_eq!(fr.register("serve.mine"), mine, "idempotent interning");
        fr.record(0, FlightKind::SpanStart, mine, 100, 1, 0);
        fr.record(0, FlightKind::SpanEnd, mine, 400, 1, 300);
        fr.record(1, FlightKind::Counter, shed, 500, 1, 0);
        let events = fr.events();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].name, "serve.mine");
        assert_eq!(events[0].kind, "span_start");
        assert_eq!(events[1].kind, "span_end");
        assert_eq!(events[1].b, 300, "elapsed travels in b");
        assert_eq!(events[2].ring, 1);
        assert_eq!(events[2].name, "serve.shed");
    }

    #[test]
    fn ring_keeps_only_the_last_capacity_events() {
        let fr = FlightRecorder::new(1, 8);
        let n = fr.register("x");
        for i in 0..20u64 {
            fr.record(0, FlightKind::Mark, n, i, i, 0);
        }
        let events = fr.events();
        assert_eq!(events.len(), 8);
        let tickets: Vec<u64> = events.iter().map(|e| e.ticket).collect();
        assert_eq!(
            tickets,
            (12..20).collect::<Vec<_>>(),
            "oldest evicted first"
        );
    }

    #[test]
    fn out_of_range_ring_clamps_instead_of_panicking() {
        let fr = FlightRecorder::new(3, 8);
        let n = fr.register("x");
        fr.record(99, FlightKind::Mark, n, 1, 0, 0);
        let events = fr.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].ring, 2);
    }

    #[test]
    fn dump_is_parseable_json_lines() {
        let fr = FlightRecorder::new(1, 8);
        let n = fr.register("serve.request");
        fr.record(0, FlightKind::SpanEnd, n, 1234, 7, 56);
        let mut buf = Vec::new();
        fr.dump_json_lines(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let mut lines = 0;
        for line in text.lines() {
            let v = Json::parse(line).expect("each line parses");
            assert_eq!(v.get("name").and_then(Json::as_str), Some("serve.request"));
            assert_eq!(v.get("kind").and_then(Json::as_str), Some("span_end"));
            assert_eq!(v.get("b").and_then(Json::as_u64), Some(56));
            lines += 1;
        }
        assert_eq!(lines, 1);
    }

    #[test]
    fn concurrent_writers_and_reader_never_crash() {
        let fr = std::sync::Arc::new(FlightRecorder::new(4, 16));
        let names: Vec<NameId> = (0..4).map(|i| fr.register(&format!("w{i}"))).collect();
        std::thread::scope(|scope| {
            for (w, &name) in names.iter().enumerate() {
                let fr = fr.clone();
                scope.spawn(move || {
                    for i in 0..5000u64 {
                        fr.record(w, FlightKind::Counter, name, i, 1, 0);
                    }
                });
            }
            let fr = fr.clone();
            scope.spawn(move || {
                for _ in 0..50 {
                    for e in fr.events() {
                        // Decoded names always come from the table.
                        assert!(e.name.starts_with('w') || e.name.starts_with("name#"));
                    }
                }
            });
        });
        // After the writers quiesce, every ring is full and consistent.
        let events = fr.events();
        assert_eq!(events.len(), 4 * 16);
        for e in events {
            assert_eq!(e.name, format!("w{}", e.ring));
        }
    }
}
