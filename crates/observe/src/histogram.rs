//! Log-linear (HDR-style) latency histograms.
//!
//! A [`Histogram`] records `u64` values (microseconds, byte counts, …)
//! into buckets whose width grows with magnitude: values below
//! `2^grid_bits` get exact unit buckets, and every power-of-two octave
//! above that is split into `2^grid_bits` equal sub-buckets. The result
//! is a fixed, small table (a few KiB) whose *relative* quantile error is
//! bounded by `1 / 2^grid_bits` regardless of the value range — the same
//! layout HdrHistogram popularized, with none of the dependencies.
//!
//! Two variants share the bucket math:
//!
//! * [`Histogram`] — plain `u64` buckets for single-threaded recording;
//!   cheap to [`merge`](Histogram::merge), which is how per-worker
//!   histograms roll up after a join.
//! * [`AtomicHistogram`] — `AtomicU64` buckets for lock-free concurrent
//!   recording (the daemon's workers all record into one);
//!   [`snapshot`](AtomicHistogram::snapshot) peels off a plain
//!   [`Histogram`] for rendering.
//!
//! Quantiles report the recorded maximum for `q = 1.0` and otherwise the
//! *upper bound* of the bucket holding the target rank, so a reported
//! percentile never understates the true value by more than the
//! configured relative error.

use std::sync::atomic::{AtomicU64, Ordering};

/// Smallest supported sub-bucket precision (2 bits → 25% relative error).
pub const MIN_GRID_BITS: u32 = 2;
/// Largest supported sub-bucket precision (10 bits → ~0.1% relative
/// error, ~55 KiB of buckets).
pub const MAX_GRID_BITS: u32 = 10;
/// The default precision: 5 sub-bucket bits → ≤ 3.125% relative error,
/// 1888 buckets (~15 KiB plain, ~15 KiB atomic).
pub const DEFAULT_GRID_BITS: u32 = 5;

/// Number of buckets a histogram with `grid_bits` precision needs to
/// cover the full `u64` range.
fn bucket_len(grid_bits: u32) -> usize {
    // 2^g unit buckets, then (64 - g) octaves of 2^g sub-buckets each.
    (65 - grid_bits as usize) << grid_bits
}

/// The bucket index for `value`: identity below `2^g`, log-linear above.
fn bucket_index(grid_bits: u32, value: u64) -> usize {
    let g = grid_bits;
    if value < (1u64 << g) {
        return value as usize;
    }
    let exp = 63 - value.leading_zeros();
    let sub = ((value >> (exp - g)) - (1u64 << g)) as usize;
    (((exp - g + 1) as usize) << g) | sub
}

/// The inclusive `[low, high]` value range of bucket `index`.
fn bucket_bounds(grid_bits: u32, index: usize) -> (u64, u64) {
    let g = grid_bits;
    if index < (1 << g) {
        return (index as u64, index as u64);
    }
    let octave = (index >> g) as u32; // >= 1
    let sub = (index & ((1 << g) - 1)) as u64;
    let low = ((1u64 << g) + sub) << (octave - 1);
    let width = 1u64 << (octave - 1);
    (low, low + (width - 1))
}

/// A mergeable log-linear histogram of `u64` values.
#[derive(Clone, Debug)]
pub struct Histogram {
    grid_bits: u32,
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
    min: u64,
}

impl Histogram {
    /// An empty histogram with `grid_bits` sub-bucket precision bits
    /// (clamped to [`MIN_GRID_BITS`]..=[`MAX_GRID_BITS`]). The relative
    /// quantile error is at most `1 / 2^grid_bits`.
    pub fn new(grid_bits: u32) -> Histogram {
        let grid_bits = grid_bits.clamp(MIN_GRID_BITS, MAX_GRID_BITS);
        Histogram {
            grid_bits,
            counts: vec![0; bucket_len(grid_bits)],
            count: 0,
            sum: 0,
            max: 0,
            min: u64::MAX,
        }
    }

    /// An empty histogram at the default precision
    /// ([`DEFAULT_GRID_BITS`]).
    pub fn with_default_precision() -> Histogram {
        Histogram::new(DEFAULT_GRID_BITS)
    }

    /// The configured sub-bucket precision bits.
    pub fn grid_bits(&self) -> u32 {
        self.grid_bits
    }

    /// The maximum relative error of any reported quantile.
    pub fn relative_error(&self) -> f64 {
        1.0 / (1u64 << self.grid_bits) as f64
    }

    /// Records one value.
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `n` occurrences of `value`.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.counts[bucket_index(self.grid_bits, value)] += n;
        self.count += n;
        self.sum = self.sum.saturating_add(value.saturating_mul(n));
        self.max = self.max.max(value);
        self.min = self.min.min(value);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.max
        }
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Arithmetic mean of recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at quantile `q` in `[0, 1]`: the upper bound of the
    /// bucket containing the value of rank `ceil(q * count)`, clamped to
    /// the recorded maximum (so `value_at_quantile(1.0) == max()`).
    /// Returns 0 when empty.
    pub fn value_at_quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            seen += c;
            if seen >= rank {
                return bucket_bounds(self.grid_bits, i).1.min(self.max);
            }
        }
        self.max
    }

    /// The inclusive bucket range `value` falls into — the interval any
    /// quantile report for it is drawn from.
    pub fn range_of(&self, value: u64) -> (u64, u64) {
        bucket_bounds(self.grid_bits, bucket_index(self.grid_bits, value))
    }

    /// Adds every bucket of `other` into `self`.
    ///
    /// # Panics
    ///
    /// Panics if the two histograms were built with different
    /// `grid_bits` (their buckets would not line up).
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            self.grid_bits, other.grid_bits,
            "cannot merge histograms with different precision"
        );
        for (dst, src) in self.counts.iter_mut().zip(&other.counts) {
            *dst += src;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
        self.min = self.min.min(other.min);
    }

    /// The non-empty buckets as `(upper_bound, count)` pairs in
    /// ascending value order — the raw material for a Prometheus-style
    /// bucket exposition (cumulate the counts, then append `+Inf`).
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_bounds(self.grid_bits, i).1, c))
            .collect()
    }
}

/// A lock-free log-linear histogram for concurrent recording.
///
/// Recording is wait-free (`fetch_add` / `fetch_max` / `fetch_min`);
/// [`snapshot`](Self::snapshot) reads the buckets without stopping
/// writers, so a snapshot taken mid-record may be off by the records in
/// flight — fine for monitoring, where the next scrape catches up.
#[derive(Debug)]
pub struct AtomicHistogram {
    grid_bits: u32,
    counts: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    min: AtomicU64,
}

impl AtomicHistogram {
    /// An empty atomic histogram with `grid_bits` precision bits
    /// (clamped like [`Histogram::new`]).
    pub fn new(grid_bits: u32) -> AtomicHistogram {
        let grid_bits = grid_bits.clamp(MIN_GRID_BITS, MAX_GRID_BITS);
        AtomicHistogram {
            grid_bits,
            counts: (0..bucket_len(grid_bits))
                .map(|_| AtomicU64::new(0))
                .collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
        }
    }

    /// An empty atomic histogram at the default precision.
    pub fn with_default_precision() -> AtomicHistogram {
        AtomicHistogram::new(DEFAULT_GRID_BITS)
    }

    /// Records one value, lock-free.
    pub fn record(&self, value: u64) {
        self.counts[bucket_index(self.grid_bits, value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A plain [`Histogram`] copy of the current state.
    pub fn snapshot(&self) -> Histogram {
        let mut h = Histogram::new(self.grid_bits);
        let mut count = 0u64;
        for (dst, src) in h.counts.iter_mut().zip(&self.counts) {
            let c = src.load(Ordering::Relaxed);
            *dst = c;
            count += c;
        }
        h.count = count;
        h.sum = self.sum.load(Ordering::Relaxed);
        h.max = self.max.load(Ordering::Relaxed);
        h.min = self.min.load(Ordering::Relaxed);
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_range_is_exact() {
        let mut h = Histogram::new(5);
        for v in 0..32 {
            h.record(v);
            assert_eq!(h.range_of(v), (v, v), "unit buckets below 2^g");
        }
        assert_eq!(h.count(), 32);
        assert_eq!(h.max(), 31);
        assert_eq!(h.min(), 0);
    }

    #[test]
    fn bucket_bounds_invert_bucket_index_everywhere() {
        for g in [MIN_GRID_BITS, 5, MAX_GRID_BITS] {
            for idx in 0..bucket_len(g) {
                let (low, high) = bucket_bounds(g, idx);
                assert!(low <= high, "g={g} idx={idx}");
                assert_eq!(bucket_index(g, low), idx, "g={g} low of {idx}");
                assert_eq!(bucket_index(g, high), idx, "g={g} high of {idx}");
            }
            // The last bucket reaches u64::MAX.
            assert_eq!(bucket_index(g, u64::MAX), bucket_len(g) - 1);
        }
    }

    #[test]
    fn relative_bucket_width_is_bounded() {
        let g = 5u32;
        let h = Histogram::new(g);
        let mut x = 1u64;
        for _ in 0..5000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let v = x >> (x % 40) as u32; // spread across magnitudes
            let (low, high) = h.range_of(v);
            assert!(low <= v && v <= high, "{v} outside [{low}, {high}]");
            let width = high - low;
            assert!(
                (width as f64) <= (low.max(1) as f64) * h.relative_error() + 1.0,
                "bucket [{low}, {high}] too wide for v={v}"
            );
        }
    }

    #[test]
    fn quantiles_are_rank_correct_on_a_known_set() {
        let mut h = Histogram::new(7);
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.value_at_quantile(1.0), 1000);
        assert_eq!(h.max(), 1000);
        for (q, exact) in [(0.5, 500u64), (0.9, 900), (0.99, 990)] {
            let got = h.value_at_quantile(q);
            let err = (got as f64 - exact as f64).abs() / exact as f64;
            assert!(
                err <= h.relative_error() + 0.002,
                "q={q}: got {got}, exact {exact}"
            );
            assert!(got >= exact, "upper-bound reporting never understates");
        }
    }

    #[test]
    fn empty_histogram_reports_zeroes() {
        let h = Histogram::new(5);
        assert_eq!(h.count(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.value_at_quantile(0.99), 0);
        assert_eq!(h.mean(), 0.0);
        assert!(h.nonzero_buckets().is_empty());
    }

    #[test]
    fn merge_equals_recording_into_one() {
        let mut a = Histogram::new(5);
        let mut b = Histogram::new(5);
        let mut whole = Histogram::new(5);
        for v in [3u64, 99, 4096, 70_000, 1 << 40] {
            a.record(v);
            whole.record(v);
        }
        for v in [1u64, 12, 800, 1 << 33] {
            b.record(v);
            whole.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.sum(), whole.sum());
        assert_eq!(a.max(), whole.max());
        assert_eq!(a.min(), whole.min());
        for q in [0.1, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(a.value_at_quantile(q), whole.value_at_quantile(q), "q={q}");
        }
    }

    #[test]
    #[should_panic(expected = "different precision")]
    fn merging_mismatched_precision_panics() {
        let mut a = Histogram::new(4);
        a.merge(&Histogram::new(6));
    }

    #[test]
    fn atomic_snapshot_matches_plain() {
        let a = AtomicHistogram::new(5);
        let mut plain = Histogram::new(5);
        for v in [0u64, 7, 31, 32, 1000, 123_456_789] {
            a.record(v);
            plain.record(v);
        }
        let snap = a.snapshot();
        assert_eq!(snap.count(), plain.count());
        assert_eq!(snap.sum(), plain.sum());
        assert_eq!(snap.max(), plain.max());
        assert_eq!(snap.min(), plain.min());
        assert_eq!(snap.nonzero_buckets(), plain.nonzero_buckets());
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = std::sync::Arc::new(AtomicHistogram::new(5));
        std::thread::scope(|scope| {
            for t in 0..4 {
                let h = h.clone();
                scope.spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 1000 + (i % 97));
                    }
                });
            }
        });
        assert_eq!(h.count(), 40_000);
    }

    #[test]
    fn grid_bits_are_clamped() {
        assert_eq!(Histogram::new(0).grid_bits(), MIN_GRID_BITS);
        assert_eq!(Histogram::new(99).grid_bits(), MAX_GRID_BITS);
        assert_eq!(
            Histogram::with_default_precision().grid_bits(),
            DEFAULT_GRID_BITS
        );
    }
}
