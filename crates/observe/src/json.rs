//! A minimal, dependency-free JSON value: render and parse.
//!
//! The observability layer emits JSON-lines event streams and metrics
//! summaries, and the test suite must validate that output *with the
//! repo's own tooling* (the workspace is hermetic — no serde). This module
//! is deliberately small: a [`Json`] tree, a recursive-descent parser, and
//! a canonical renderer. Numbers are stored as `f64`; integers up to
//! 2^53 round-trip exactly, which comfortably covers every quantity the
//! miners report.

use std::fmt::Write as _;

/// A JSON value. Object member order is preserved.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as insertion-ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

/// A parse failure: byte offset plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset where parsing failed.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Builds a number from a `u64` (exact up to 2^53).
    pub fn from_u64(v: u64) -> Json {
        Json::Num(v as f64)
    }

    /// Builds a number from a `usize` (exact up to 2^53).
    pub fn from_usize(v: usize) -> Json {
        Json::Num(v as f64)
    }

    /// Object member lookup (first match); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as an unsigned integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= (1u64 << 53) as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Renders the value as compact JSON (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() <= (1u64 << 53) as f64 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::Str(s) => escape_into(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(JsonError {
                at: pos,
                message: "trailing characters after document".into(),
            });
        }
        Ok(value)
    }
}

/// Escapes `s` as a JSON string literal (with surrounding quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    escape_into(s, &mut out);
    out
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn fail<T>(at: usize, message: impl Into<String>) -> Result<T, JsonError> {
    Err(JsonError {
        at,
        message: message.into(),
    })
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), JsonError> {
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        fail(*pos, format!("expected {:?}", b as char))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => fail(*pos, "unexpected end of input"),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'-' | b'0'..=b'9') => parse_number(bytes, pos),
        Some(&other) => fail(*pos, format!("unexpected character {:?}", other as char)),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    literal: &str,
    value: Json,
) -> Result<Json, JsonError> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(value)
    } else {
        fail(*pos, format!("expected {literal:?}"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii number slice");
    match text.parse::<f64>() {
        Ok(n) if n.is_finite() => Ok(Json::Num(n)),
        _ => fail(start, format!("invalid number {text:?}")),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return fail(*pos, "unterminated string"),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or(JsonError {
                                at: *pos,
                                message: "truncated \\u escape".into(),
                            })?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| JsonError {
                            at: *pos,
                            message: format!("bad \\u escape {hex:?}"),
                        })?;
                        // Surrogates are replaced rather than paired; the
                        // emitter never produces them.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return fail(*pos, "bad escape"),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so boundaries
                // are sound).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|_| JsonError {
                    at: *pos,
                    message: "invalid utf-8".into(),
                })?;
                let c = rest.chars().next().expect("non-empty rest");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return fail(*pos, "expected ',' or ']'"),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    expect(bytes, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        members.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            _ => return fail(*pos, "expected ',' or '}'"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_and_reparses_nested_documents() {
        let doc = Json::Obj(vec![
            ("name".into(), Json::Str("scan1".into())),
            ("n".into(), Json::from_u64(12345)),
            ("frac".into(), Json::Num(0.5)),
            ("ok".into(), Json::Bool(true)),
            ("none".into(), Json::Null),
            (
                "xs".into(),
                Json::Arr(vec![Json::from_u64(1), Json::from_u64(2)]),
            ),
        ]);
        let text = doc.render();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, doc);
        assert_eq!(back.get("n").unwrap().as_u64(), Some(12345));
        assert_eq!(back.get("frac").unwrap().as_f64(), Some(0.5));
        assert_eq!(back.get("xs").unwrap().as_arr().unwrap().len(), 2);
    }

    #[test]
    fn escapes_round_trip() {
        for s in [
            "plain",
            "tab\there",
            "nl\nnr\r",
            "q\"b\\s",
            "ctl\u{1}",
            "é✓",
        ] {
            let rendered = escape(s);
            let back = Json::parse(&rendered).unwrap();
            assert_eq!(back.as_str(), Some(s), "{rendered}");
        }
    }

    #[test]
    fn parses_whitespace_and_nesting() {
        let text = " { \"a\" : [ 1 , { \"b\" : null } ] , \"c\" : -2.5e1 } ";
        let v = Json::parse(text).unwrap();
        assert_eq!(v.get("c").unwrap().as_f64(), Some(-25.0));
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[1].get("b"), Some(&Json::Null));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\":1} trailing").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("nul").is_err());
        assert!(Json::parse("1e999").is_err(), "non-finite number rejected");
    }

    #[test]
    fn integer_u64_boundary() {
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Num(1.5).as_u64(), None);
        assert_eq!(Json::from_u64(1 << 53).as_u64(), Some(1 << 53));
        assert_eq!(Json::Str("5".into()).as_u64(), None);
    }
}
