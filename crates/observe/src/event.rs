//! The event vocabulary shared by every sink.
//!
//! Everything the instrumented stack reports flows through exactly one
//! type, [`Event`], so sinks stay trivially pluggable. Events carry a
//! per-context sequence number (total order across threads attached to the
//! same context) and a microsecond timestamp relative to the moment the
//! context was installed, taken from the monotonic clock.

use crate::json::Json;

/// One observability event.
///
/// The five variants map onto the classic telemetry primitives: paired
/// span start/end records with monotonic timings, monotone counters,
/// point-in-time gauges, and `Mark` — a named point event with free-form
/// detail (retries, injected faults, guard trips, checkpoint writes).
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A span opened. `parent` is the enclosing span on the same thread
    /// (or the one explicitly propagated to a worker), if any.
    SpanStart {
        /// Context-wide sequence number.
        seq: u64,
        /// Microseconds since the context was installed.
        at_us: u64,
        /// Unique span id within the context.
        id: u64,
        /// Enclosing span id, if any.
        parent: Option<u64>,
        /// Span name (dotted, e.g. `hitset.scan1`).
        name: &'static str,
    },
    /// A span closed.
    SpanEnd {
        /// Context-wide sequence number.
        seq: u64,
        /// Microseconds since the context was installed.
        at_us: u64,
        /// The id the matching [`Event::SpanStart`] carried.
        id: u64,
        /// Span name, repeated for self-contained JSON lines.
        name: &'static str,
        /// Wall-clock duration of the span in microseconds.
        elapsed_us: u64,
    },
    /// A named counter increased by `delta`.
    Counter {
        /// Context-wide sequence number.
        seq: u64,
        /// Microseconds since the context was installed.
        at_us: u64,
        /// Counter name.
        name: &'static str,
        /// Amount added.
        delta: u64,
    },
    /// A named gauge was set to `value`.
    Gauge {
        /// Context-wide sequence number.
        seq: u64,
        /// Microseconds since the context was installed.
        at_us: u64,
        /// Gauge name.
        name: &'static str,
        /// The new value.
        value: u64,
    },
    /// A point event with free-form detail.
    Mark {
        /// Context-wide sequence number.
        seq: u64,
        /// Microseconds since the context was installed.
        at_us: u64,
        /// Event name.
        name: &'static str,
        /// Human-readable detail.
        detail: String,
    },
}

impl Event {
    /// The event's sequence number.
    pub fn seq(&self) -> u64 {
        match self {
            Event::SpanStart { seq, .. }
            | Event::SpanEnd { seq, .. }
            | Event::Counter { seq, .. }
            | Event::Gauge { seq, .. }
            | Event::Mark { seq, .. } => *seq,
        }
    }

    /// The event's timestamp (microseconds since context install).
    pub fn at_us(&self) -> u64 {
        match self {
            Event::SpanStart { at_us, .. }
            | Event::SpanEnd { at_us, .. }
            | Event::Counter { at_us, .. }
            | Event::Gauge { at_us, .. }
            | Event::Mark { at_us, .. } => *at_us,
        }
    }

    /// The event's name.
    pub fn name(&self) -> &'static str {
        match self {
            Event::SpanStart { name, .. }
            | Event::SpanEnd { name, .. }
            | Event::Counter { name, .. }
            | Event::Gauge { name, .. }
            | Event::Mark { name, .. } => name,
        }
    }

    /// The schema tag used in the JSON encoding.
    pub fn type_tag(&self) -> &'static str {
        match self {
            Event::SpanStart { .. } => "span_start",
            Event::SpanEnd { .. } => "span_end",
            Event::Counter { .. } => "counter",
            Event::Gauge { .. } => "gauge",
            Event::Mark { .. } => "mark",
        }
    }

    /// Encodes the event as a JSON object (the JSON-lines schema).
    pub fn to_json(&self) -> Json {
        let mut obj = vec![
            ("type".to_owned(), Json::Str(self.type_tag().to_owned())),
            ("seq".to_owned(), Json::from_u64(self.seq())),
            ("us".to_owned(), Json::from_u64(self.at_us())),
            ("name".to_owned(), Json::Str(self.name().to_owned())),
        ];
        match self {
            Event::SpanStart { id, parent, .. } => {
                obj.push(("id".to_owned(), Json::from_u64(*id)));
                if let Some(p) = parent {
                    obj.push(("parent".to_owned(), Json::from_u64(*p)));
                }
            }
            Event::SpanEnd { id, elapsed_us, .. } => {
                obj.push(("id".to_owned(), Json::from_u64(*id)));
                obj.push(("elapsed_us".to_owned(), Json::from_u64(*elapsed_us)));
            }
            Event::Counter { delta, .. } => {
                obj.push(("delta".to_owned(), Json::from_u64(*delta)));
            }
            Event::Gauge { value, .. } => {
                obj.push(("value".to_owned(), Json::from_u64(*value)));
            }
            Event::Mark { detail, .. } => {
                obj.push(("detail".to_owned(), Json::Str(detail.clone())));
            }
        }
        Json::Obj(obj)
    }

    /// Encodes the event as one JSON line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        self.to_json().render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_cover_every_variant() {
        let events = [
            Event::SpanStart {
                seq: 1,
                at_us: 10,
                id: 1,
                parent: None,
                name: "a",
            },
            Event::SpanEnd {
                seq: 2,
                at_us: 20,
                id: 1,
                name: "a",
                elapsed_us: 10,
            },
            Event::Counter {
                seq: 3,
                at_us: 21,
                name: "c",
                delta: 5,
            },
            Event::Gauge {
                seq: 4,
                at_us: 22,
                name: "g",
                value: 7,
            },
            Event::Mark {
                seq: 5,
                at_us: 23,
                name: "m",
                detail: "hi".into(),
            },
        ];
        let seqs: Vec<u64> = events.iter().map(Event::seq).collect();
        assert_eq!(seqs, vec![1, 2, 3, 4, 5]);
        assert_eq!(events[0].type_tag(), "span_start");
        assert_eq!(events[4].name(), "m");
        assert_eq!(events[3].at_us(), 22);
    }

    #[test]
    fn json_lines_are_single_line_objects() {
        let ev = Event::Mark {
            seq: 9,
            at_us: 100,
            name: "fault.injected",
            detail: "short read\nafter 3".into(),
        };
        let line = ev.to_json_line();
        assert!(!line.contains('\n'), "{line}");
        assert!(line.starts_with('{') && line.ends_with('}'));
        let parsed = Json::parse(&line).unwrap();
        assert_eq!(parsed.get("type").unwrap().as_str(), Some("mark"));
        assert_eq!(
            parsed.get("detail").unwrap().as_str(),
            Some("short read\nafter 3")
        );
    }
}
