//! # partial-periodic
//!
//! A Rust implementation of **Han, Dong & Yin, "Efficient Mining of Partial
//! Periodic Patterns in Time Series Database" (ICDE 1999)** — the
//! max-subpattern hit-set method and its companions — with the time-series
//! substrate and workload generators needed to use and evaluate it.
//!
//! This crate is a facade: it re-exports the three library crates of the
//! workspace so applications can depend on one name.
//!
//! * [`core`] (`ppm-core`) — the mining algorithms: single-period Apriori
//!   (Alg 3.1), max-subpattern hit set (Alg 3.2, two scans), multi-period
//!   looping and shared mining (Algs 3.3/3.4), the max-subpattern tree
//!   (Algs 4.1/4.2), plus maximal patterns, periodic rules, perturbation
//!   tolerance, multi-level mining and a perfect-periodicity baseline.
//! * [`timeseries`] (`ppm-timeseries`) — feature catalogs, compact series
//!   storage (in memory and on disk), discretization, taxonomies, slot
//!   windows.
//! * [`datagen`] (`ppm-datagen`) — the paper's §5.1 synthetic generator and
//!   scripted domain workloads.
//! * [`observe`] (`ppm-observe`) — zero-dependency structured tracing and
//!   metrics: spans, counters, gauges, marks, and pluggable sinks; the
//!   miners are instrumented with it and it costs nothing when no sink is
//!   installed.
//! * [`serve`] (`ppm-serve`) — the fault-tolerant mining daemon behind
//!   `ppm serve`: shared zero-copy store registry, length-prefixed JSON
//!   wire protocol, admission control with load shedding, per-query panic
//!   containment, and a crash-safe anti-monotone result cache.
//!
//! The most common items are re-exported at the top level:
//!
//! ```
//! use partial_periodic::{hitset, FeatureCatalog, MineConfig, SeriesBuilder};
//!
//! let mut catalog = FeatureCatalog::new();
//! let tea = catalog.intern("tea");
//! let mut builder = SeriesBuilder::new();
//! for _ in 0..8 {
//!     builder.push_instant([tea]);
//!     builder.push_instant([]);
//! }
//! let series = builder.finish();
//! let result = hitset::mine(&series, 2, &MineConfig::new(0.9).unwrap()).unwrap();
//! assert_eq!(result.len(), 1); // "tea *" every period
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub use ppm_core as core;
pub use ppm_datagen as datagen;
pub use ppm_observe as observe;
pub use ppm_serve as serve;
pub use ppm_timeseries as timeseries;

pub use ppm_core::{
    apriori, audit, closed, constraints, evolution, hitset, maximal, multi, multilevel, parallel,
    perfect, perturb, rules, stats, streaming, vertical, Algorithm, FrequentPattern, MineConfig,
    MiningResult, Pattern, Symbol,
};
pub use ppm_datagen::SyntheticSpec;
pub use ppm_timeseries::{FeatureCatalog, FeatureId, FeatureSeries, SeriesBuilder};

/// Mines a single period with the chosen algorithm (re-export of
/// [`ppm_core::mine`]).
pub use ppm_core::mine;
